//! The concurrent Adaptive Radix Tree and its RECIPE conversion.
//!
//! Synchronization follows the "ART of practical synchronization" scheme the RECIPE
//! paper builds on: readers are non-blocking and never retry (they *tolerate*
//! inconsistencies and verify the full key at the leaf); writers take per-node locks
//! only around the slots they modify. Non-SMO inserts/deletes commit with a single
//! atomic store (Condition #1). The path-compression split is the two-step SMO of
//! Condition #3:
//!
//! 1. install a new branch node in the parent slot (atomic store), then
//! 2. truncate the old node's packed prefix word (atomic store).
//!
//! A crash between the steps leaves a node whose stored prefix is too long; readers
//! detect it via `level != depth + prefix_len` and skip the stale bytes, and the
//! P-ART write path repairs it with the Condition-#3 helper: if `try_lock` on the node
//! succeeds, no writer is active, so the inconsistency is permanent and the prefix is
//! recomputed from the `level` field and persisted.

use crate::node::{is_leaf, leaf_ref, pack_prefix, Leaf, Node256, Node4, NodeRef, MAX_PREFIX};
use recipe::persist::PersistMode;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A concurrent Adaptive Radix Tree, generic over the persistence policy.
///
/// `Art<Dram>` is the DRAM index; `Art<Pmem>` is P-ART. Keys are byte strings; a key
/// that is a strict prefix of another key is not supported (operations on such keys
/// return `false`/`None`), matching the fixed-length keys used in the paper's
/// evaluation.
pub struct Art<P: PersistMode> {
    root: AtomicUsize,
    _policy: PhantomData<P>,
}

// SAFETY: all shared mutable state is reached through atomics and per-node locks; the
// raw node words reference allocations that are never freed while the tree is alive.
unsafe impl<P: PersistMode> Send for Art<P> {}
// SAFETY: as above — all shared mutation is mediated by atomics and per-node locks.
unsafe impl<P: PersistMode> Sync for Art<P> {}

impl<P: PersistMode> Default for Art<P> {
    fn default() -> Self {
        Self::new()
    }
}

fn persist_cb<P: PersistMode>() -> impl Fn(*const u8, usize, bool) {
    |ptr, len, fence| {
        P::mark_dirty(ptr, len);
        P::persist_range(ptr, len, fence);
    }
}

fn persist_new_node<P: PersistMode>(word: usize) {
    // SAFETY: caller passes a freshly allocated inner-node word.
    let n = unsafe { NodeRef::from_word(word) };
    P::persist_range(word as *const u8, n.size_bytes(), true);
}

fn persist_new_leaf<P: PersistMode>(leaf_word: usize) {
    // SAFETY: caller passes a freshly allocated tagged leaf word.
    let l = unsafe { leaf_ref(leaf_word) };
    P::persist_range(l.key.as_ptr(), l.key.len(), false);
    P::persist_range((leaf_word & !1) as *const u8, std::mem::size_of::<Leaf>(), true);
}

impl<P: PersistMode> Art<P> {
    /// Create an empty tree. The root is a `Node256` that is never replaced.
    #[must_use]
    pub fn new() -> Self {
        let root = Node256::alloc(0, b"");
        persist_new_node::<P>(root);
        let t = Art { root: AtomicUsize::new(root), _policy: PhantomData };
        P::persist_obj(&t.root, true);
        t
    }

    #[inline]
    fn root_ref(&self) -> NodeRef {
        // SAFETY: the root word always refers to the live root Node256.
        unsafe { NodeRef::from_word(self.root.load(Ordering::Acquire)) }
    }

    /// Point lookup. Non-blocking; tolerates in-flight or crash-interrupted SMOs by
    /// skipping stale prefixes and verifying the full key at the leaf.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        if key.is_empty() {
            return None;
        }
        let mut node = self.root_ref();
        let mut depth = 0usize;
        loop {
            pm::stats::record_node_visit();
            let hdr = node.hdr();
            let level = hdr.level as usize;
            let (pbytes, plen) = hdr.prefix();
            if level == depth + plen {
                // Consistent prefix: compare it against the key.
                let avail = key.len().saturating_sub(depth);
                let cmp = plen.min(avail);
                if key[depth..depth + cmp] != pbytes[..cmp] || avail < plen {
                    return None;
                }
                depth += plen;
            } else if level >= depth {
                // Inconsistent (interrupted path-compression split): tolerate by
                // skipping to the branch position; the leaf check catches mismatches.
                depth = level;
            } else {
                return None;
            }
            if depth >= key.len() {
                return None;
            }
            let child = node.find_child(key[depth]);
            if child == 0 {
                return None;
            }
            if is_leaf(child) {
                // SAFETY: leaves are never freed while the tree is alive.
                let leaf = unsafe { leaf_ref(child) };
                return (&*leaf.key == key).then(|| leaf.value.load(Ordering::Acquire));
            }
            // SAFETY: inner nodes are never freed while the tree is alive.
            node = unsafe { NodeRef::from_word(child) };
            depth += 1;
        }
    }

    /// The Condition-#3 helper: called from the write path when it observes a node
    /// whose prefix is inconsistent with its level. If the node lock can be acquired
    /// the inconsistency is permanent (left by a crash) and the prefix is recomputed
    /// from the immutable `level` field and persisted; otherwise another writer is
    /// active and the inconsistency is transient.
    fn fix_prefix(&self, node: NodeRef, depth: usize) {
        let hdr = node.hdr();
        if let Some(_guard) = hdr.lock.try_lock() {
            if hdr.obsolete.load(Ordering::Acquire) {
                return;
            }
            let (pbytes, plen) = hdr.prefix();
            let level = hdr.level as usize;
            if level == depth + plen || level < depth || level > depth + plen {
                return;
            }
            let eff = level - depth;
            let skip = plen - eff;
            let fixed = pack_prefix(&pbytes[skip..plen]);
            hdr.prefix.store(fixed, Ordering::Release);
            P::mark_dirty_obj(&hdr.prefix);
            P::persist_obj(&hdr.prefix, true);
            P::crash_site("art.helper.prefix_fixed");
        }
    }

    /// Insert or update; returns `true` if the key was newly inserted.
    pub fn insert(&self, key: &[u8], value: u64) -> bool {
        if key.is_empty() {
            return false;
        }
        'restart: loop {
            let mut parent: Option<(NodeRef, u8)> = None;
            let mut node = self.root_ref();
            let mut depth = 0usize;
            loop {
                pm::stats::record_node_visit();
                let hdr = node.hdr();
                let level = hdr.level as usize;
                let (pbytes, plen) = hdr.prefix();
                if level != depth + plen {
                    if level < depth {
                        return false; // malformed path for this key; treat as unsupported
                    }
                    // Writers detect the inconsistency; P-ART fixes it if permanent.
                    self.fix_prefix(node, depth);
                    if hdr.prefix.load(Ordering::Acquire) != pack_prefix(&pbytes[..plen]) {
                        continue; // the helper repaired the prefix; re-read this node
                    }
                    // Transient (another writer mid-split): tolerate by skipping.
                    depth = level;
                } else {
                    // Consistent prefix: find the first mismatching byte.
                    let mut p = 0usize;
                    while p < plen && depth + p < key.len() && pbytes[p] == key[depth + p] {
                        p += 1;
                    }
                    if p < plen {
                        if depth + p >= key.len() {
                            return false; // key is a strict prefix of existing keys
                        }
                        if self.path_split(parent, node, depth, p, &pbytes, plen, key, value) {
                            return true;
                        }
                        continue 'restart;
                    }
                    depth += plen;
                }
                if depth >= key.len() {
                    return false; // key is a strict prefix of existing keys
                }
                let b = key[depth];
                let child = node.find_child(b);
                if child == 0 {
                    match self.add_leaf(parent, node, b, key, value) {
                        AddLeafOutcome::Inserted => return true,
                        AddLeafOutcome::Retry => continue 'restart,
                    }
                }
                if is_leaf(child) {
                    // SAFETY: leaves are never freed while the tree is alive.
                    let leaf = unsafe { leaf_ref(child) };
                    if &*leaf.key == key {
                        leaf.value.store(value, Ordering::Release);
                        P::mark_dirty_obj(&leaf.value);
                        P::persist_obj(&leaf.value, true);
                        return false;
                    }
                    match self.leaf_split(node, b, child, depth, key, value) {
                        Some(inserted) => return inserted,
                        None => continue 'restart,
                    }
                }
                parent = Some((node, b));
                // SAFETY: inner nodes are never freed while the tree is alive.
                node = unsafe { NodeRef::from_word(child) };
                depth += 1;
            }
        }
    }

    /// Add a new leaf under `node` at byte `b`, growing the node if it is full.
    fn add_leaf(
        &self,
        parent: Option<(NodeRef, u8)>,
        node: NodeRef,
        b: u8,
        key: &[u8],
        value: u64,
    ) -> AddLeafOutcome {
        let hdr = node.hdr();
        if !node.is_full() {
            let _g = hdr.lock.lock();
            if hdr.obsolete.load(Ordering::Acquire) || node.find_child(b) != 0 {
                return AddLeafOutcome::Retry;
            }
            if !node.is_full() {
                let leaf = Leaf::alloc(key, value);
                persist_new_leaf::<P>(leaf);
                P::crash_site("art.insert.leaf_persisted");
                // Commit: single atomic child-pointer (or index) store.
                let ok = node.add_child(b, leaf, &persist_cb::<P>());
                debug_assert!(ok);
                P::crash_site("art.insert.committed");
                return AddLeafOutcome::Inserted;
            }
            // fall through to grow (re-acquired below in parent-then-node order)
        }
        // Node is full: grow. Lock ordering is parent before node to stay consistent
        // with the path-split path.
        let Some((par, pbyte)) = parent else {
            // The root is a Node256 and can never be full.
            return AddLeafOutcome::Retry;
        };
        let par_hdr = par.hdr();
        let _pg = par_hdr.lock.lock();
        if par_hdr.obsolete.load(Ordering::Acquire) || par.find_child(pbyte) != node.word() {
            return AddLeafOutcome::Retry;
        }
        let _ng = hdr.lock.lock();
        if hdr.obsolete.load(Ordering::Acquire) || node.find_child(b) != 0 || !node.is_full() {
            return AddLeafOutcome::Retry;
        }
        let leaf = Leaf::alloc(key, value);
        persist_new_leaf::<P>(leaf);
        let grown = node.grow_with(b, leaf);
        persist_new_node::<P>(grown);
        P::crash_site("art.grow.new_node_persisted");
        // Commit: swap the parent's child pointer to the grown copy.
        let ok = par.replace_child(pbyte, grown, &persist_cb::<P>());
        debug_assert!(ok);
        hdr.obsolete.store(true, Ordering::Release);
        P::crash_site("art.grow.committed");
        AddLeafOutcome::Inserted
    }

    /// Path-compression split (Condition #3 SMO): the search key diverges from the
    /// node's compressed prefix after `p` matching bytes.
    #[allow(clippy::too_many_arguments)]
    fn path_split(
        &self,
        parent: Option<(NodeRef, u8)>,
        node: NodeRef,
        depth: usize,
        p: usize,
        pbytes: &[u8; MAX_PREFIX],
        plen: usize,
        key: &[u8],
        value: u64,
    ) -> bool {
        let Some((par, pbyte)) = parent else {
            return false; // the root has no prefix; cannot happen
        };
        let par_hdr = par.hdr();
        let _pg = par_hdr.lock.lock();
        if par_hdr.obsolete.load(Ordering::Acquire) || par.find_child(pbyte) != node.word() {
            return false;
        }
        let hdr = node.hdr();
        let _ng = hdr.lock.lock();
        if hdr.obsolete.load(Ordering::Acquire) {
            return false;
        }
        // Re-validate the prefix under the lock.
        let (cur_prefix, cur_len) = hdr.prefix();
        if cur_len != plen
            || cur_prefix[..plen] != pbytes[..plen]
            || hdr.level as usize != depth + plen
        {
            return false;
        }
        let new_leaf = Leaf::alloc(key, value);
        persist_new_leaf::<P>(new_leaf);
        // Build the new branch node covering the matched part of the prefix.
        let branch = Node4::alloc((depth + p) as u32, &pbytes[..p]);
        // SAFETY: freshly allocated.
        let branch_ref = unsafe { NodeRef::from_word(branch) };
        let noop = |_: *const u8, _: usize, _: bool| {};
        branch_ref.add_child(pbytes[p], node.word(), &noop);
        branch_ref.add_child(key[depth + p], new_leaf, &noop);
        persist_new_node::<P>(branch);
        P::crash_site("art.path_split.branch_persisted");
        // Step 1: install the branch node in the parent (atomic store).
        let ok = par.replace_child(pbyte, branch, &persist_cb::<P>());
        debug_assert!(ok);
        P::crash_site("art.path_split.installed");
        // Step 2: truncate this node's prefix (single atomic store). A crash between
        // the steps leaves the stale prefix that readers tolerate and the helper fixes.
        let truncated = pack_prefix(&pbytes[p + 1..plen]);
        hdr.prefix.store(truncated, Ordering::Release);
        P::mark_dirty_obj(&hdr.prefix);
        P::persist_obj(&hdr.prefix, true);
        P::crash_site("art.path_split.prefix_truncated");
        true
    }

    /// Replace a single leaf by a (possibly chained) subtree holding both the existing
    /// leaf and the new key. Commits with a single atomic store into `node`'s slot.
    /// Returns `Some(true)` on insert, `Some(false)` for unsupported prefix keys, and
    /// `None` when the caller must retry.
    fn leaf_split(
        &self,
        node: NodeRef,
        b: u8,
        existing: usize,
        depth: usize,
        key: &[u8],
        value: u64,
    ) -> Option<bool> {
        let hdr = node.hdr();
        let _g = hdr.lock.lock();
        if hdr.obsolete.load(Ordering::Acquire) || node.find_child(b) != existing {
            return None;
        }
        // SAFETY: the existing child is a live leaf (checked by the caller).
        let old_leaf = unsafe { leaf_ref(existing) };
        let old_key = &old_leaf.key;
        let base = depth + 1;
        let mut cp = 0usize;
        while base + cp < key.len()
            && base + cp < old_key.len()
            && key[base + cp] == old_key[base + cp]
        {
            cp += 1;
        }
        if base + cp >= key.len() || base + cp >= old_key.len() {
            // One key is a strict prefix of the other: unsupported.
            return Some(false);
        }
        let new_leaf = Leaf::alloc(key, value);
        persist_new_leaf::<P>(new_leaf);
        let subtree = build_split_subtree::<P>(base, cp, key, old_key, existing, new_leaf);
        P::crash_site("art.leaf_split.subtree_persisted");
        // Commit: single atomic store replacing the leaf with the subtree.
        let ok = node.replace_child(b, subtree, &persist_cb::<P>());
        debug_assert!(ok);
        P::crash_site("art.leaf_split.committed");
        Some(true)
    }

    /// Remove a key. Returns `true` if it was present. No structural shrinking is
    /// performed (matching the evaluated workloads, which contain no deletes).
    pub fn remove(&self, key: &[u8]) -> bool {
        if key.is_empty() {
            return false;
        }
        'restart: loop {
            let mut node = self.root_ref();
            let mut depth = 0usize;
            loop {
                pm::stats::record_node_visit();
                let hdr = node.hdr();
                let level = hdr.level as usize;
                let (pbytes, plen) = hdr.prefix();
                if level == depth + plen {
                    let avail = key.len().saturating_sub(depth);
                    if avail < plen || key[depth..depth + plen] != pbytes[..plen] {
                        return false;
                    }
                    depth += plen;
                } else if level >= depth {
                    depth = level;
                } else {
                    return false;
                }
                if depth >= key.len() {
                    return false;
                }
                let b = key[depth];
                let child = node.find_child(b);
                if child == 0 {
                    return false;
                }
                if is_leaf(child) {
                    // SAFETY: leaves are never freed while the tree is alive.
                    let leaf = unsafe { leaf_ref(child) };
                    if &*leaf.key != key {
                        return false;
                    }
                    let _g = hdr.lock.lock();
                    if hdr.obsolete.load(Ordering::Acquire) || node.find_child(b) != child {
                        continue 'restart;
                    }
                    // Commit: single atomic store clearing the slot.
                    let ok = node.remove_child(b, &persist_cb::<P>());
                    debug_assert!(ok);
                    P::crash_site("art.remove.committed");
                    return true;
                }
                // SAFETY: inner nodes are never freed while the tree is alive.
                node = unsafe { NodeRef::from_word(child) };
                depth += 1;
            }
        }
    }

    /// Range scan: up to `count` pairs with key `>= start`, ascending.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::with_capacity(count.min(1024));
        self.scan_into(start, count, &mut out);
        out
    }

    /// [`Art::scan`] into a caller-provided buffer: appends up to `count` pairs
    /// with key `>= start` (ascending) to `out` without clearing it, so cursor
    /// callers can stream batches through one reused allocation.
    pub fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<(Vec<u8>, u64)>) {
        if count == 0 {
            return;
        }
        let target = out.len().saturating_add(count);
        self.scan_rec(self.root.load(Ordering::Acquire), start, true, target, out);
    }

    fn scan_rec(
        &self,
        word: usize,
        start: &[u8],
        bounded: bool,
        count: usize,
        out: &mut Vec<(Vec<u8>, u64)>,
    ) -> bool {
        if is_leaf(word) {
            // SAFETY: leaves are never freed while the tree is alive.
            let leaf = unsafe { leaf_ref(word) };
            if !bounded || &*leaf.key >= start {
                out.push((leaf.key.to_vec(), leaf.value.load(Ordering::Acquire)));
            }
            return out.len() >= count;
        }
        pm::stats::record_node_visit();
        // SAFETY: inner nodes are never freed while the tree is alive.
        let node = unsafe { NodeRef::from_word(word) };
        let hdr = node.hdr();
        let level = hdr.level as usize;
        let mut bounded = bounded;
        if bounded {
            // Compare the compressed prefix with the corresponding slice of `start`.
            // For nodes with a stale (too long) prefix the positions cannot be
            // reconstructed; we conservatively keep the subtree bounded.
            let (pbytes, plen) = hdr.prefix();
            if let Some(pfx_start) = level.checked_sub(plen) {
                for (i, &pb) in pbytes.iter().enumerate().take(plen) {
                    match start.get(pfx_start + i).copied() {
                        None => {
                            bounded = false;
                            break;
                        }
                        Some(sb) => {
                            if pb > sb {
                                bounded = false;
                                break;
                            }
                            if pb < sb {
                                return false; // whole subtree below the bound
                            }
                        }
                    }
                }
            }
        }
        // `NodeRef::children` reports every node type's children in key order, so
        // the scan needs no sort here.
        for (b, child) in node.children() {
            let child_bounded = if !bounded {
                false
            } else {
                match start.get(level).copied() {
                    None => false,
                    Some(sb) => {
                        if b < sb {
                            continue;
                        }
                        b == sb
                    }
                }
            };
            if self.scan_rec(child, start, child_bounded, count, out) {
                return true;
            }
        }
        out.len() >= count
    }

    /// Walk every reachable node and re-initialise its lock: RECIPE's post-crash lock
    /// re-initialisation (embedded locks are meaningless across restarts).
    pub fn recover_locks(&self) {
        fn walk(word: usize) {
            if word == 0 || is_leaf(word) {
                return;
            }
            // SAFETY: reachable inner nodes are never freed while the tree is alive.
            let node = unsafe { NodeRef::from_word(word) };
            node.hdr().lock.force_unlock();
            for (_, c) in node.children() {
                walk(c);
            }
        }
        walk(self.root.load(Ordering::Acquire));
    }

    /// Number of keys currently stored (slow full traversal; diagnostics and tests).
    #[must_use]
    pub fn len(&self) -> usize {
        fn walk(word: usize) -> usize {
            if word == 0 {
                return 0;
            }
            if is_leaf(word) {
                return 1;
            }
            // SAFETY: reachable inner nodes are never freed while the tree is alive.
            let node = unsafe { NodeRef::from_word(word) };
            node.children().iter().map(|&(_, c)| walk(c)).sum()
        }
        walk(self.root.load(Ordering::Acquire))
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum AddLeafOutcome {
    Inserted,
    Retry,
}

/// Build a chain of `Node4`s covering `cp` shared key bytes starting at `base`, ending
/// in a `Node4` that branches between the existing leaf and the new leaf. Every node is
/// persisted; the caller commits by installing the returned word.
fn build_split_subtree<P: PersistMode>(
    base: usize,
    cp: usize,
    new_key: &[u8],
    old_key: &[u8],
    existing: usize,
    new_leaf: usize,
) -> usize {
    let noop = |_: *const u8, _: usize, _: bool| {};
    // Segment the shared bytes into chunks of (up to 7 prefix bytes + 1 branch byte)
    // for intermediate single-child nodes, leaving <= MAX_PREFIX bytes for the final
    // branching node.
    let mut segments: Vec<usize> = Vec::new(); // start offsets of intermediate nodes
    let mut consumed = 0usize;
    while cp - consumed > MAX_PREFIX {
        segments.push(base + consumed);
        consumed += MAX_PREFIX + 1;
    }
    let final_start = base + consumed;
    let final_plen = base + cp - final_start;
    let branch_pos = base + cp;

    let final_node =
        Node4::alloc(branch_pos as u32, &new_key[final_start..final_start + final_plen]);
    // SAFETY: freshly allocated.
    let final_ref = unsafe { NodeRef::from_word(final_node) };
    final_ref.add_child(old_key[branch_pos], existing, &noop);
    final_ref.add_child(new_key[branch_pos], new_leaf, &noop);
    persist_new_node::<P>(final_node);

    let mut child = final_node;
    for &seg_start in segments.iter().rev() {
        let node = Node4::alloc(
            (seg_start + MAX_PREFIX) as u32,
            &new_key[seg_start..seg_start + MAX_PREFIX],
        );
        // SAFETY: freshly allocated.
        let r = unsafe { NodeRef::from_word(node) };
        r.add_child(new_key[seg_start + MAX_PREFIX], child, &noop);
        persist_new_node::<P>(node);
        child = node;
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe::key::u64_key;
    use recipe::persist::{Dram, Pmem};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn empty_tree_lookups() {
        let t: Art<Dram> = Art::new();
        assert_eq!(t.get(b"missing"), None);
        assert_eq!(t.get(b""), None);
        assert!(t.is_empty());
        assert!(!t.remove(b"missing"));
        assert!(t.scan(b"", 10).is_empty());
    }

    #[test]
    fn insert_get_fixed_len_keys() {
        let t: Art<Dram> = Art::new();
        for i in 0..10_000u64 {
            assert!(t.insert(&u64_key(i), i * 3), "insert {i}");
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(&u64_key(i)), Some(i * 3), "get {i}");
        }
        assert_eq!(t.get(&u64_key(10_000)), None);
    }

    #[test]
    fn insert_is_upsert() {
        let t: Art<Dram> = Art::new();
        assert!(t.insert(b"keyXXXXX", 1));
        assert!(!t.insert(b"keyXXXXX", 2));
        assert_eq!(t.get(b"keyXXXXX"), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn long_shared_prefixes_build_chains() {
        let t: Art<Dram> = Art::new();
        // 24-byte keys sharing a 20-byte prefix exercise the chained split path.
        let prefix = b"user00000000000000000"; // 21 bytes
        let mut keys = Vec::new();
        for i in 0..200u32 {
            let mut k = prefix.to_vec();
            k.extend_from_slice(&i.to_be_bytes()[1..]); // 3 bytes -> 24 total
            keys.push(k);
        }
        for (i, k) in keys.iter().enumerate() {
            assert!(t.insert(k, i as u64), "insert {i}");
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "get {i}");
        }
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn remove_then_reinsert() {
        let t: Art<Dram> = Art::new();
        for i in 0..1000u64 {
            t.insert(&u64_key(i), i);
        }
        for i in (0..1000u64).step_by(2) {
            assert!(t.remove(&u64_key(i)), "remove {i}");
        }
        for i in 0..1000u64 {
            let expect = if i % 2 == 0 { None } else { Some(i) };
            assert_eq!(t.get(&u64_key(i)), expect, "get {i}");
        }
        for i in (0..1000u64).step_by(2) {
            assert!(t.insert(&u64_key(i), i + 1));
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn scan_returns_sorted_ranges() {
        let t: Art<Dram> = Art::new();
        let mut model = BTreeMap::new();
        for i in (0..2000u64).rev() {
            let k = u64_key(i * 7);
            t.insert(&k, i);
            model.insert(k.to_vec(), i);
        }
        for start in [0u64, 1, 35, 6999, 14_000 - 7] {
            let sk = u64_key(start);
            let got = t.scan(&sk, 25);
            let want: Vec<(Vec<u8>, u64)> =
                model.range(sk.to_vec()..).take(25).map(|(k, v)| (k.clone(), *v)).collect();
            assert_eq!(got, want, "scan from {start}");
        }
    }

    #[test]
    fn scan_with_variable_length_keys() {
        let t: Art<Dram> = Art::new();
        let keys: Vec<&[u8]> =
            vec![b"aaaa0001", b"aaaa0002", b"aaab0001", b"abcd9999", b"zzzz0000"];
        for (i, k) in keys.iter().enumerate() {
            assert!(t.insert(k, i as u64));
        }
        let got = t.scan(b"aaab", 10);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, b"aaab0001".to_vec());
    }

    #[test]
    fn pm_variant_flushes_and_dram_does_not() {
        let before = pm::stats::snapshot_local();
        let d: Art<Dram> = Art::new();
        for i in 0..500u64 {
            d.insert(&u64_key(i), i);
        }
        let mid = pm::stats::snapshot_local();
        assert_eq!(mid.since(&before).clwb, 0);
        let p: Art<Pmem> = Art::new();
        for i in 0..500u64 {
            p.insert(&u64_key(i), i);
        }
        let d2 = pm::stats::snapshot_local().since(&mid);
        assert!(d2.clwb > 0);
        assert!(d2.fence > 0);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t: Arc<Art<Pmem>> = Arc::new(Art::new());
        let threads = 8usize;
        let per = 4000u64;
        let mut handles = Vec::new();
        for tid in 0..threads as u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let k = u64_key(tid * per + i);
                    assert!(t.insert(&k, tid * per + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), threads * per as usize);
        for v in 0..threads as u64 * per {
            assert_eq!(t.get(&u64_key(v)), Some(v), "key {v} lost");
        }
    }

    #[test]
    fn concurrent_mixed_readers_and_writers() {
        let t: Arc<Art<Pmem>> = Arc::new(Art::new());
        for i in 0..10_000u64 {
            t.insert(&u64_key(i), i);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = i % 10_000;
                    assert_eq!(t.get(&u64_key(k)), Some(k));
                    i += 1;
                }
            }));
        }
        let mut writers = Vec::new();
        for w in 0..4u64 {
            let t = Arc::clone(&t);
            writers.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    let k = 100_000 + w * 5_000 + i;
                    t.insert(&u64_key(k), k);
                }
            }));
        }
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        for w in 0..4u64 {
            for i in 0..5_000u64 {
                let k = 100_000 + w * 5_000 + i;
                assert_eq!(t.get(&u64_key(k)), Some(k));
            }
        }
    }

    #[test]
    fn random_keys_match_btreemap_model() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let t: Art<Dram> = Art::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for _ in 0..20_000 {
            let k: u64 = rng.gen();
            let v: u64 = rng.gen();
            let key = u64_key(k).to_vec();
            t.insert(&key, v);
            model.insert(key, v);
        }
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(*v));
        }
        assert_eq!(t.len(), model.len());
    }
}
