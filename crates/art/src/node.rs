//! Node types of the Adaptive Radix Tree.
//!
//! ART adapts the physical fanout of each node to the number of live children: 4-, 16-,
//! 48- and 256-way nodes share a common header (type tag, child count, level, prefix,
//! lock). Child pointers are tagged words: bit 0 set means the pointer refers to a
//! [`Leaf`], clear means an inner node. The 8-byte header word that holds the
//! compressed prefix (up to 7 bytes + length) is a single atomic, because the second
//! step of ART's path-compression SMO — truncating the prefix — must be one
//! hardware-atomic store (§6.4 of the RECIPE paper).
//!
//! Mutation protocol (writers hold the node's lock; readers are non-blocking):
//!
//! * adding a child writes the key byte / slot first and *commits* with the child
//!   pointer (or slot-index) store;
//! * removing a child clears the pointer/slot atomically;
//! * growing a node copies it and the parent's slot is swapped by the caller — the old
//!   node is marked obsolete so writers that still hold its lock restart.

use recipe::lock::VersionLock;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, AtomicUsize, Ordering};

/// Maximum number of prefix bytes stored inline in the header word.
pub const MAX_PREFIX: usize = 7;

/// Node kind tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeTag {
    /// Up to 4 children, linear key array.
    N4 = 0,
    /// Up to 16 children, linear key array.
    N16 = 1,
    /// Up to 48 children, 256-byte index array.
    N48 = 2,
    /// Direct 256-way array.
    N256 = 3,
}

/// Pack up to [`MAX_PREFIX`] prefix bytes and their length into one `u64`.
///
/// Layout: the low byte is the length, bytes 1..=7 are the prefix bytes in order.
#[must_use]
pub fn pack_prefix(prefix: &[u8]) -> u64 {
    debug_assert!(prefix.len() <= MAX_PREFIX);
    let mut w = prefix.len() as u64;
    for (i, &b) in prefix.iter().enumerate() {
        w |= u64::from(b) << (8 * (i + 1));
    }
    w
}

/// Inverse of [`pack_prefix`]: returns the prefix bytes and their length.
#[must_use]
pub fn unpack_prefix(word: u64) -> ([u8; MAX_PREFIX], usize) {
    let len = (word & 0xFF) as usize;
    let len = len.min(MAX_PREFIX);
    let mut out = [0u8; MAX_PREFIX];
    for (i, slot) in out.iter_mut().enumerate().take(len) {
        *slot = ((word >> (8 * (i + 1))) & 0xFF) as u8;
    }
    (out, len)
}

/// A single-value leaf: the full key (for final verification by non-blocking readers)
/// and the value.
pub struct Leaf {
    /// Full key bytes.
    pub key: Box<[u8]>,
    /// Current value; updates are single atomic stores.
    pub value: AtomicU64,
}

impl Leaf {
    /// Allocate a leaf on the PM pool and return its tagged pointer word.
    pub fn alloc(key: &[u8], value: u64) -> usize {
        let leaf = pm::alloc::pm_box(Leaf {
            key: key.to_vec().into_boxed_slice(),
            value: AtomicU64::new(value),
        });
        (leaf as usize) | 1
    }
}

/// Whether a child word refers to a leaf.
#[inline]
#[must_use]
pub fn is_leaf(word: usize) -> bool {
    word & 1 == 1
}

/// Dereference a leaf child word.
///
/// # Safety
/// `word` must be a tagged pointer produced by [`Leaf::alloc`] that has not been freed.
#[inline]
pub unsafe fn leaf_ref<'a>(word: usize) -> &'a Leaf {
    debug_assert!(is_leaf(word));
    // SAFETY: caller contract; leaves are never freed while the tree is alive.
    unsafe { &*((word & !1) as *const Leaf) }
}

/// Common header shared (as the first field) by all inner node types.
///
/// Field order is cacheline-conscious: `count` sits **last** so that in every node
/// type it is adjacent to the key material that follows the header (the packed key
/// words of Node4/Node16, the byte index of Node48). A lookup's intra-node search
/// reads exactly `count` + keys, so placing them on the same 64-byte line keeps the
/// search to a single likely-cold line; the layout test below pins this.
#[repr(C)]
pub struct NodeHeader {
    /// Node kind.
    pub tag: NodeTag,
    /// Set when the node has been replaced (grown) and must no longer be modified.
    pub obsolete: AtomicBool,
    /// Key-byte index at which this node branches in the *decompressed* radix tree:
    /// `level == depth + prefix_len` for a consistent node. Never modified after
    /// creation; readers and the Condition-#3 helper use it to detect (and repair)
    /// interrupted path-compression SMOs.
    pub level: u32,
    /// Write lock (readers never take it).
    pub lock: VersionLock,
    /// Packed compressed prefix (see [`pack_prefix`]). A single atomic word so prefix
    /// truncation — step 2 of the path-compression split — is one atomic store.
    pub prefix: AtomicU64,
    /// Number of child slots ever used (holes from deletions are reused). Kept last:
    /// see the struct-level layout note.
    pub count: AtomicU16,
}

impl NodeHeader {
    fn new(tag: NodeTag, level: u32, prefix: &[u8]) -> Self {
        NodeHeader {
            tag,
            obsolete: AtomicBool::new(false),
            level,
            lock: VersionLock::new(),
            prefix: AtomicU64::new(pack_prefix(prefix)),
            count: AtomicU16::new(0),
        }
    }

    /// Load and unpack the compressed prefix.
    pub fn prefix(&self) -> ([u8; MAX_PREFIX], usize) {
        unpack_prefix(self.prefix.load(Ordering::Acquire))
    }
}

/// 4-way node. Key bytes are packed into one atomic word (byte lane `i` = slot `i`)
/// so a search is one `Acquire` load + a branch-free compare.
#[repr(C, align(64))]
pub struct Node4 {
    /// Shared header.
    pub hdr: NodeHeader,
    keys: AtomicU64,
    children: [AtomicUsize; 4],
}

/// 16-way node. Key bytes are packed into two atomic words (slot `i` = byte lane
/// `i % 8` of word `i / 8`), searched with one vectorized compare.
#[repr(C, align(64))]
pub struct Node16 {
    /// Shared header.
    pub hdr: NodeHeader,
    keys: [AtomicU64; 2],
    children: [AtomicUsize; 16],
}

/// 48-way node: a 256-entry index maps key bytes to one of 48 child slots
/// (stored as slot + 1; 0 = empty). The index is packed into 32 `AtomicU64`
/// byte-lane words (key byte `b` = lane `b % 8` of word `b / 8`) so a lookup is
/// one word load + a lane extract and the `children()` scan runs 16 entries per
/// vectorized nonzero-lane step ([`crate::search::occupied_slots`]) instead of
/// 256 single-byte atomic loads. The 64-byte alignment puts the header and the
/// first stretch of the index on one line.
#[repr(C, align(64))]
pub struct Node48 {
    /// Shared header.
    pub hdr: NodeHeader,
    index: [AtomicU64; 32],
    children: [AtomicUsize; 48],
}

/// 256-way node: direct-mapped children.
#[repr(C, align(64))]
pub struct Node256 {
    /// Shared header.
    pub hdr: NodeHeader,
    children: [AtomicUsize; 256],
}

macro_rules! zeroed_array {
    ($ty:ty, $n:expr) => {{
        let mut v: Vec<$ty> = Vec::with_capacity($n);
        v.resize_with($n, Default::default);
        let boxed: Box<[$ty; $n]> = v.into_boxed_slice().try_into().ok().expect("length matches");
        *boxed
    }};
}

impl Node4 {
    /// Allocate an empty `Node4` on the PM pool. Returns the untagged pointer word.
    pub fn alloc(level: u32, prefix: &[u8]) -> usize {
        pm::alloc::pm_box(Node4 {
            hdr: NodeHeader::new(NodeTag::N4, level, prefix),
            keys: AtomicU64::new(0),
            children: zeroed_array!(AtomicUsize, 4),
        }) as usize
    }
}

impl Node16 {
    /// Allocate an empty `Node16` on the PM pool. Returns the untagged pointer word.
    pub fn alloc(level: u32, prefix: &[u8]) -> usize {
        pm::alloc::pm_box(Node16 {
            hdr: NodeHeader::new(NodeTag::N16, level, prefix),
            keys: [AtomicU64::new(0), AtomicU64::new(0)],
            children: zeroed_array!(AtomicUsize, 16),
        }) as usize
    }
}

impl Node48 {
    /// Allocate an empty `Node48` on the PM pool. Returns the untagged pointer word.
    pub fn alloc(level: u32, prefix: &[u8]) -> usize {
        pm::alloc::pm_box(Node48 {
            hdr: NodeHeader::new(NodeTag::N48, level, prefix),
            index: zeroed_array!(AtomicU64, 32),
            children: zeroed_array!(AtomicUsize, 48),
        }) as usize
    }

    /// The slot reference (slot + 1; 0 = empty) for key byte `b`: one `Acquire`
    /// word load + a lane extract.
    #[inline]
    fn slot_ref(&self, b: u8) -> u8 {
        let w = self.index[b as usize / 8].load(Ordering::Acquire);
        recipe::simd::get_lane8(w, b as usize % 8)
    }

    /// Store slot reference `v` for key byte `b` with one atomic word store (a
    /// lane splice; the word is only written under the node lock, so the
    /// read-modify-write cannot race another writer, and readers see the other
    /// lanes unchanged). Persists the containing 8-byte word.
    #[inline]
    fn set_slot_ref(&self, b: u8, v: u8, persist: &dyn Fn(*const u8, usize, bool)) {
        let wi = b as usize / 8;
        let cur = self.index[wi].load(Ordering::Acquire);
        self.index[wi].store(recipe::simd::set_lane8(cur, b as usize % 8, v), Ordering::Release);
        persist(self.index[wi].as_ptr() as *const u8, 8, true);
    }
}

impl Node256 {
    /// Allocate an empty `Node256` (also used for the tree root).
    pub fn alloc(level: u32, prefix: &[u8]) -> usize {
        pm::alloc::pm_box(Node256 {
            hdr: NodeHeader::new(NodeTag::N256, level, prefix),
            children: zeroed_array!(AtomicUsize, 256),
        }) as usize
    }
}

/// A borrowed view of an inner node, dispatching on the header tag.
#[derive(Clone, Copy)]
pub struct NodeRef {
    ptr: *mut NodeHeader,
}

// SAFETY: NodeRef is a shared reference to an inner node whose mutation protocol is
// lock + atomics; it can be sent/shared across threads like `&NodeHeader`.
unsafe impl Send for NodeRef {}
// SAFETY: as above — shared access follows the lock + atomics protocol.
unsafe impl Sync for NodeRef {}

impl NodeRef {
    /// Wrap an untagged child word.
    ///
    /// # Safety
    /// `word` must be an untagged pointer to a live inner node allocated by this crate.
    #[inline]
    pub unsafe fn from_word(word: usize) -> NodeRef {
        debug_assert!(!is_leaf(word) && word != 0);
        NodeRef { ptr: word as *mut NodeHeader }
    }

    /// The untagged pointer word for storing in a parent slot.
    #[inline]
    #[must_use]
    pub fn word(&self) -> usize {
        self.ptr as usize
    }

    /// Shared access to the header.
    #[inline]
    #[must_use]
    pub fn hdr(&self) -> &NodeHeader {
        // SAFETY: construction contract of `from_word`.
        unsafe { &*self.ptr }
    }

    #[inline]
    fn as_n4(&self) -> &Node4 {
        // SAFETY: tag checked by callers; all node types are #[repr(C)] with the
        // header first, so the cast is layout-compatible.
        unsafe { &*(self.ptr as *const Node4) }
    }
    #[inline]
    fn as_n16(&self) -> &Node16 {
        // SAFETY: see `as_n4`.
        unsafe { &*(self.ptr as *const Node16) }
    }
    #[inline]
    fn as_n48(&self) -> &Node48 {
        // SAFETY: see `as_n4`.
        unsafe { &*(self.ptr as *const Node48) }
    }
    #[inline]
    fn as_n256(&self) -> &Node256 {
        // SAFETY: see `as_n4`.
        unsafe { &*(self.ptr as *const Node256) }
    }

    /// Find the child for key byte `b`, or 0 if absent. Non-blocking.
    ///
    /// Node4/Node16 go through [`crate::search::match_slots`] — one `Acquire` load
    /// per packed key word, then a branch-free vectorized compare — instead of the
    /// old per-byte `Acquire` loop.
    #[must_use]
    pub fn find_child(&self, b: u8) -> usize {
        match self.hdr().tag {
            NodeTag::N4 => {
                let n = self.as_n4();
                Self::find_packed(
                    std::slice::from_ref(&n.keys),
                    &n.children,
                    &n.hdr,
                    b,
                    pm::stats::Mapping::ArtN4,
                )
            }
            NodeTag::N16 => {
                let n = self.as_n16();
                Self::find_packed(&n.keys, &n.children, &n.hdr, b, pm::stats::Mapping::ArtN16)
            }
            NodeTag::N48 => {
                pm::stats::record_probes(pm::stats::Mapping::ArtN48, 1);
                let n = self.as_n48();
                let idx = n.slot_ref(b);
                if idx == 0 {
                    0
                } else {
                    n.children[(idx - 1) as usize].load(Ordering::Acquire)
                }
            }
            NodeTag::N256 => {
                pm::stats::record_probes(pm::stats::Mapping::ArtN256, 1);
                self.as_n256().children[b as usize].load(Ordering::Acquire)
            }
        }
    }

    fn find_packed(
        words: &[AtomicU64],
        children: &[AtomicUsize],
        hdr: &NodeHeader,
        b: u8,
        mapping: pm::stats::Mapping,
    ) -> usize {
        let count = (hdr.count.load(Ordering::Acquire) as usize).min(children.len());
        pm::stats::record_probes(mapping, count as u64);
        let (w0, w1) = Self::load_key_words(words);
        for i in crate::search::match_slots(w0, w1, count, b) {
            let c = children[i].load(Ordering::Acquire);
            if c != 0 {
                return c;
            }
        }
        0
    }

    /// One `Acquire` load per packed key word (Node4 has one, Node16 two).
    #[inline]
    fn load_key_words(words: &[AtomicU64]) -> (u64, u64) {
        let w0 = words[0].load(Ordering::Acquire);
        let w1 = if words.len() > 1 { words[1].load(Ordering::Acquire) } else { 0 };
        (w0, w1)
    }

    /// All live `(key byte, child word)` pairs, **in key order**. Lock-free snapshot.
    ///
    /// Every node type reports sorted children (Node4/Node16 sort their ≤16 live
    /// entries here; Node48/Node256 iterate in byte order), so `scan` needs no sort.
    #[must_use]
    pub fn children(&self) -> Vec<(u8, usize)> {
        let mut out = Vec::new();
        match self.hdr().tag {
            NodeTag::N4 => {
                let n = self.as_n4();
                Self::collect_packed(std::slice::from_ref(&n.keys), &n.children, &n.hdr, &mut out);
            }
            NodeTag::N16 => {
                let n = self.as_n16();
                Self::collect_packed(&n.keys, &n.children, &n.hdr, &mut out);
            }
            NodeTag::N48 => {
                // Vectorized occupancy scan: 16 index entries per step instead of
                // 256 single-byte loads; empty word pairs short-circuit entirely.
                let n = self.as_n48();
                for pair in 0..16usize {
                    let w0 = n.index[2 * pair].load(Ordering::Acquire);
                    let w1 = n.index[2 * pair + 1].load(Ordering::Acquire);
                    if w0 == 0 && w1 == 0 {
                        continue;
                    }
                    for lane in crate::search::occupied_slots(w0, w1) {
                        let idx = crate::search::key_at(w0, w1, lane);
                        let c = n.children[(idx - 1) as usize].load(Ordering::Acquire);
                        if c != 0 {
                            out.push(((pair * 16 + lane) as u8, c));
                        }
                    }
                }
            }
            NodeTag::N256 => {
                let n = self.as_n256();
                for b in 0..256usize {
                    let c = n.children[b].load(Ordering::Acquire);
                    if c != 0 {
                        out.push((b as u8, c));
                    }
                }
            }
        }
        out
    }

    fn collect_packed(
        words: &[AtomicU64],
        children: &[AtomicUsize],
        hdr: &NodeHeader,
        out: &mut Vec<(u8, usize)>,
    ) {
        let count = (hdr.count.load(Ordering::Acquire) as usize).min(children.len());
        let (w0, w1) = Self::load_key_words(words);
        let start = out.len();
        for (i, child) in children.iter().enumerate().take(count) {
            let c = child.load(Ordering::Acquire);
            if c != 0 {
                out.push((crate::search::key_at(w0, w1, i), c));
            }
        }
        out[start..].sort_unstable_by_key(|&(b, _)| b);
    }

    /// Whether the node has no room for a new child (caller should grow). Writers call
    /// this under the node lock, so the answer is stable.
    #[must_use]
    pub fn is_full(&self) -> bool {
        match self.hdr().tag {
            NodeTag::N4 => self.linear_full(&self.as_n4().children, 4),
            NodeTag::N16 => self.linear_full(&self.as_n16().children, 16),
            NodeTag::N48 => {
                let n = self.as_n48();
                (0..48).all(|i| n.children[i].load(Ordering::Acquire) != 0)
            }
            NodeTag::N256 => false,
        }
    }

    fn linear_full(&self, children: &[AtomicUsize], cap: usize) -> bool {
        let count = self.hdr().count.load(Ordering::Acquire) as usize;
        if count < cap {
            return false;
        }
        (0..cap).all(|i| children[i].load(Ordering::Acquire) != 0)
    }

    /// Add a child for key byte `b`. Must be called with the node lock held and only
    /// when [`NodeRef::is_full`] is false and `b` is not already present.
    ///
    /// The `persist` callback is invoked as `persist(addr, len, fence)` after the
    /// preparatory store(s) and after the committing store, letting the caller (the
    /// generic tree) drive the RECIPE conversion.
    pub fn add_child(&self, b: u8, child: usize, persist: &dyn Fn(*const u8, usize, bool)) -> bool {
        match self.hdr().tag {
            NodeTag::N4 => {
                let n = self.as_n4();
                self.add_packed(std::slice::from_ref(&n.keys), &n.children, 4, b, child, persist)
            }
            NodeTag::N16 => {
                let n = self.as_n16();
                self.add_packed(&n.keys, &n.children, 16, b, child, persist)
            }
            NodeTag::N48 => {
                let n = self.as_n48();
                let slot = (0..48).find(|&i| n.children[i].load(Ordering::Acquire) == 0);
                let Some(slot) = slot else { return false };
                n.children[slot].store(child, Ordering::Release);
                persist(n.children[slot].as_ptr() as *const u8, 8, true);
                // Commit: publish the slot in the packed byte index.
                n.set_slot_ref(b, slot as u8 + 1, persist);
                self.hdr().count.fetch_add(1, Ordering::Release);
                true
            }
            NodeTag::N256 => {
                let n = self.as_n256();
                n.children[b as usize].store(child, Ordering::Release);
                persist(n.children[b as usize].as_ptr() as *const u8, 8, true);
                self.hdr().count.fetch_add(1, Ordering::Release);
                true
            }
        }
    }

    fn add_packed(
        &self,
        words: &[AtomicU64],
        children: &[AtomicUsize],
        cap: usize,
        b: u8,
        child: usize,
        persist: &dyn Fn(*const u8, usize, bool),
    ) -> bool {
        let hdr = self.hdr();
        let count = hdr.count.load(Ordering::Acquire) as usize;
        // Reuse a hole left by a deletion first.
        let hole = (0..count.min(cap)).find(|&i| children[i].load(Ordering::Acquire) == 0);
        let (slot, bump_count) = match hole {
            Some(i) => (i, false),
            None if count < cap => (count, true),
            None => return false,
        };
        // Key byte first (persisted), then the committing child-pointer store. The
        // byte is spliced into its packed word with one atomic store; the word is
        // only written under the node lock, so the read-modify-write cannot race
        // with another writer, and readers see the other lanes unchanged.
        let (wi, lane) = (slot / 8, slot % 8);
        let cur = words[wi].load(Ordering::Acquire);
        words[wi].store(recipe::simd::set_lane8(cur, lane, b), Ordering::Release);
        persist(words[wi].as_ptr() as *const u8, 8, true);
        children[slot].store(child, Ordering::Release);
        persist(children[slot].as_ptr() as *const u8, 8, true);
        if bump_count {
            hdr.count.fetch_add(1, Ordering::Release);
            persist(&hdr.count as *const AtomicU16 as *const u8, 2, true);
        }
        true
    }

    /// Replace the existing child for byte `b` with `new_child` (single atomic store).
    /// Must be called with the node lock held; returns false if `b` has no child.
    pub fn replace_child(
        &self,
        b: u8,
        new_child: usize,
        persist: &dyn Fn(*const u8, usize, bool),
    ) -> bool {
        match self.hdr().tag {
            NodeTag::N4 => {
                let n = self.as_n4();
                self.replace_packed(
                    std::slice::from_ref(&n.keys),
                    &n.children,
                    b,
                    new_child,
                    persist,
                )
            }
            NodeTag::N16 => {
                let n = self.as_n16();
                self.replace_packed(&n.keys, &n.children, b, new_child, persist)
            }
            NodeTag::N48 => {
                let n = self.as_n48();
                let idx = n.slot_ref(b);
                if idx == 0 {
                    return false;
                }
                let slot = (idx - 1) as usize;
                n.children[slot].store(new_child, Ordering::Release);
                persist(n.children[slot].as_ptr() as *const u8, 8, true);
                true
            }
            NodeTag::N256 => {
                let n = self.as_n256();
                if n.children[b as usize].load(Ordering::Acquire) == 0 {
                    return false;
                }
                n.children[b as usize].store(new_child, Ordering::Release);
                persist(n.children[b as usize].as_ptr() as *const u8, 8, true);
                true
            }
        }
    }

    fn replace_packed(
        &self,
        words: &[AtomicU64],
        children: &[AtomicUsize],
        b: u8,
        new_child: usize,
        persist: &dyn Fn(*const u8, usize, bool),
    ) -> bool {
        let count = (self.hdr().count.load(Ordering::Acquire) as usize).min(children.len());
        let (w0, w1) = Self::load_key_words(words);
        for i in crate::search::match_slots(w0, w1, count, b) {
            if children[i].load(Ordering::Acquire) != 0 {
                children[i].store(new_child, Ordering::Release);
                persist(children[i].as_ptr() as *const u8, 8, true);
                return true;
            }
        }
        false
    }

    /// Remove the child for byte `b` (single atomic store). Lock must be held.
    pub fn remove_child(&self, b: u8, persist: &dyn Fn(*const u8, usize, bool)) -> bool {
        match self.hdr().tag {
            NodeTag::N4 => {
                let n = self.as_n4();
                self.remove_packed(std::slice::from_ref(&n.keys), &n.children, b, persist)
            }
            NodeTag::N16 => {
                let n = self.as_n16();
                self.remove_packed(&n.keys, &n.children, b, persist)
            }
            NodeTag::N48 => {
                let n = self.as_n48();
                let idx = n.slot_ref(b);
                if idx == 0 {
                    return false;
                }
                n.set_slot_ref(b, 0, persist);
                n.children[(idx - 1) as usize].store(0, Ordering::Release);
                true
            }
            NodeTag::N256 => {
                let n = self.as_n256();
                if n.children[b as usize].load(Ordering::Acquire) == 0 {
                    return false;
                }
                n.children[b as usize].store(0, Ordering::Release);
                persist(n.children[b as usize].as_ptr() as *const u8, 8, true);
                true
            }
        }
    }

    fn remove_packed(
        &self,
        words: &[AtomicU64],
        children: &[AtomicUsize],
        b: u8,
        persist: &dyn Fn(*const u8, usize, bool),
    ) -> bool {
        let count = (self.hdr().count.load(Ordering::Acquire) as usize).min(children.len());
        let (w0, w1) = Self::load_key_words(words);
        for i in crate::search::match_slots(w0, w1, count, b) {
            if children[i].load(Ordering::Acquire) != 0 {
                children[i].store(0, Ordering::Release);
                persist(children[i].as_ptr() as *const u8, 8, true);
                return true;
            }
        }
        false
    }

    /// Copy this node into the next larger node type, adding child `b -> child`.
    /// Returns the new node's untagged word. Lock must be held; the caller installs the
    /// new node in the parent and marks this node obsolete.
    #[must_use]
    pub fn grow_with(&self, b: u8, child: usize) -> usize {
        let hdr = self.hdr();
        let (prefix, plen) = hdr.prefix();
        let new_word = match hdr.tag {
            NodeTag::N4 => Node16::alloc(hdr.level, &prefix[..plen]),
            NodeTag::N16 => Node48::alloc(hdr.level, &prefix[..plen]),
            NodeTag::N48 => Node256::alloc(hdr.level, &prefix[..plen]),
            NodeTag::N256 => unreachable!("Node256 never grows"),
        };
        // SAFETY: freshly allocated inner node word.
        let new_ref = unsafe { NodeRef::from_word(new_word) };
        let noop = |_: *const u8, _: usize, _: bool| {};
        for (kb, c) in self.children() {
            let ok = new_ref.add_child(kb, c, &noop);
            debug_assert!(ok);
        }
        let ok = new_ref.add_child(b, child, &noop);
        debug_assert!(ok);
        new_word
    }

    /// Approximate memory size of this node in bytes (for persist calls).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self.hdr().tag {
            NodeTag::N4 => std::mem::size_of::<Node4>(),
            NodeTag::N16 => std::mem::size_of::<Node16>(),
            NodeTag::N48 => std::mem::size_of::<Node48>(),
            NodeTag::N256 => std::mem::size_of::<Node256>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> impl Fn(*const u8, usize, bool) {
        |_, _, _| {}
    }

    #[test]
    fn prefix_packing_roundtrip() {
        for pfx in [&b""[..], b"a", b"abc", b"1234567"] {
            let w = pack_prefix(pfx);
            let (bytes, len) = unpack_prefix(w);
            assert_eq!(&bytes[..len], pfx);
        }
    }

    #[test]
    fn leaf_tagging() {
        let w = Leaf::alloc(b"key", 7);
        assert!(is_leaf(w));
        // SAFETY: freshly allocated leaf.
        let l = unsafe { leaf_ref(w) };
        assert_eq!(&*l.key, b"key");
        assert_eq!(l.value.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn n4_add_find_remove() {
        let w = Node4::alloc(0, b"");
        // SAFETY: freshly allocated.
        let n = unsafe { NodeRef::from_word(w) };
        assert_eq!(n.find_child(5), 0);
        let c1 = Leaf::alloc(b"a", 1);
        let c2 = Leaf::alloc(b"b", 2);
        assert!(n.add_child(5, c1, &noop()));
        assert!(n.add_child(9, c2, &noop()));
        assert_eq!(n.find_child(5), c1);
        assert_eq!(n.find_child(9), c2);
        assert_eq!(n.children().len(), 2);
        assert!(n.remove_child(5, &noop()));
        assert_eq!(n.find_child(5), 0);
        assert!(!n.remove_child(5, &noop()));
        // Hole is reused.
        let c3 = Leaf::alloc(b"c", 3);
        assert!(n.add_child(7, c3, &noop()));
        assert_eq!(n.find_child(7), c3);
        assert_eq!(n.hdr().count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn n4_fills_and_reports_full() {
        let w = Node4::alloc(0, b"");
        // SAFETY: freshly allocated.
        let n = unsafe { NodeRef::from_word(w) };
        for b in 0..4u8 {
            assert!(!n.is_full());
            assert!(n.add_child(b, Leaf::alloc(&[b], b as u64), &noop()));
        }
        assert!(n.is_full());
        assert!(!n.add_child(99, Leaf::alloc(b"x", 0), &noop()));
    }

    #[test]
    fn grow_preserves_children_through_all_sizes() {
        let mut word = Node4::alloc(3, b"pre");
        let mut inserted: Vec<(u8, usize)> = Vec::new();
        for b in 0..200u8 {
            // SAFETY: `word` always refers to the current live copy.
            let n = unsafe { NodeRef::from_word(word) };
            let leaf = Leaf::alloc(&[b], b as u64);
            if n.is_full() {
                word = n.grow_with(b, leaf);
            } else {
                assert!(n.add_child(b, leaf, &noop()));
            }
            inserted.push((b, leaf));
            // SAFETY: `word` was produced by this test's own allocations above.
            let cur = unsafe { NodeRef::from_word(word) };
            for &(kb, c) in &inserted {
                assert_eq!(
                    cur.find_child(kb),
                    c,
                    "lost child {kb} after reaching {:?}",
                    cur.hdr().tag
                );
            }
        }
        // SAFETY: current copy.
        let n = unsafe { NodeRef::from_word(word) };
        assert_eq!(n.hdr().tag, NodeTag::N256);
        assert_eq!(n.hdr().level, 3);
        let (p, l) = n.hdr().prefix();
        assert_eq!(&p[..l], b"pre");
        assert_eq!(n.children().len(), 200);
    }

    #[test]
    fn n48_and_n256_replace_child() {
        for make in [Node48::alloc as fn(u32, &[u8]) -> usize, Node256::alloc] {
            let w = make(0, b"");
            // SAFETY: freshly allocated.
            let n = unsafe { NodeRef::from_word(w) };
            let c1 = Leaf::alloc(b"1", 1);
            let c2 = Leaf::alloc(b"2", 2);
            assert!(!n.replace_child(10, c2, &noop()), "replace on absent byte fails");
            assert!(n.add_child(10, c1, &noop()));
            assert!(n.replace_child(10, c2, &noop()));
            assert_eq!(n.find_child(10), c2);
        }
    }

    #[test]
    fn header_is_first_field_for_every_node_type() {
        // The unsafe casts in NodeRef rely on the header being at offset 0.
        assert_eq!(std::mem::offset_of!(Node4, hdr), 0);
        assert_eq!(std::mem::offset_of!(Node16, hdr), 0);
        assert_eq!(std::mem::offset_of!(Node48, hdr), 0);
        assert_eq!(std::mem::offset_of!(Node256, hdr), 0);
    }

    #[test]
    fn count_and_keys_share_the_first_cacheline() {
        // The cacheline-conscious relayout: nodes are 64-byte aligned and the
        // occupancy count + the key material a search reads all sit in line 0.
        assert_eq!(std::mem::align_of::<Node4>(), 64);
        assert_eq!(std::mem::align_of::<Node16>(), 64);
        assert_eq!(std::mem::align_of::<Node48>(), 64);
        let count_off = std::mem::offset_of!(NodeHeader, count);
        assert!(count_off + 2 <= 64);
        assert!(std::mem::offset_of!(Node4, keys) + 8 <= 64);
        assert!(std::mem::offset_of!(Node16, keys) + 16 <= 64);
        // Node48's index array starts in line 0 right after the header.
        assert!(std::mem::offset_of!(Node48, index) < 64);
    }

    #[test]
    fn children_are_reported_in_key_order() {
        // Insert out of order into N4 and N16; `children()` must come back sorted.
        for (make, n_keys) in
            [(Node4::alloc as fn(u32, &[u8]) -> usize, 4usize), (Node16::alloc, 16)]
        {
            let w = make(0, b"");
            // SAFETY: freshly allocated.
            let n = unsafe { NodeRef::from_word(w) };
            let bytes: Vec<u8> = (0..n_keys as u8).map(|i| 251u8.wrapping_mul(i + 1)).collect();
            for &b in &bytes {
                assert!(n.add_child(b, Leaf::alloc(&[b], u64::from(b)), &noop()));
            }
            let got: Vec<u8> = n.children().iter().map(|&(b, _)| b).collect();
            let mut want = bytes.clone();
            want.sort_unstable();
            assert_eq!(got, want, "{:?} children not in key order", n.hdr().tag);
        }
    }
}
