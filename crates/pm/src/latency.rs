//! Calibrated PM latency model: the cost side of the simulated substrate.
//!
//! [`crate::flush`] and [`crate::stats`] count events; this module *prices* them so
//! the benchmark harness reproduces the throughput **shape** of the paper's Optane
//! results (Figures 4–5) without PM hardware. The model is asymmetric, like the
//! hardware it imitates:
//!
//! * **Reads** ([`Model::read_ns`]) — Optane media reads are ~3× DRAM latency, and
//!   the paper's counter analysis shows LLC misses (node visits) explain the
//!   read-side orderings. Every [`crate::stats::record_node_visit`] is charged
//!   `read_ns`.
//! * **Flushes** ([`Model::clwb_ns`]) — `clwb` posts a line to the write-pending
//!   queue. Repeated flushes of the *same* line within one fence epoch coalesce in
//!   the WPQ (write combining), so only the first flush of a line since the last
//!   fence is charged; the repeats are free until the next [`crate::flush::sfence`]
//!   opens a new epoch. Epochs are per-thread, matching `sfence` semantics (it
//!   orders the issuing core's stores).
//! * **Fences** ([`Model::fence_ns`]) — `sfence` drains the store buffer and waits
//!   on the WPQ; charged per fence, and it closes the thread's dedup epoch.
//! * **eADR** ([`Model::eadr`]) — on eADR platforms the caches themselves are in the
//!   persistence domain: flushes cost nothing (they are charged 0 and never open an
//!   epoch) but fences keep their ordering cost.
//!
//! Charges are recorded in deterministic **charged-ns counters** (global and
//! thread-local, mirroring [`crate::stats`]) so tests assert exact accounting
//! without wall clocks; the wall-clock side pays the same nanoseconds with a
//! batched busy-wait (debt is accumulated per thread and paid once it exceeds
//! [`PAY_GRANULARITY_NS`], amortising the `Instant` overhead that would otherwise
//! dwarf a ~100 ns charge).
//!
//! The process starts with the **zero model** installed (no charges, no waits), so
//! unit tests and the crash harness run at full speed. Benchmark binaries install
//! [`Model::from_env`], whose defaults are the *calibrated* constants
//! ([`DEFAULT_CLWB_NS`] / [`DEFAULT_FENCE_NS`] / [`DEFAULT_READ_NS`]) picked by
//! `bench --bin calibrate` to reproduce the paper's qualitative orderings
//! (`bench --bin shape_check` pins them in CI); the `RECIPE_CLWB_NS`,
//! `RECIPE_FENCE_NS`, `RECIPE_READ_NS` and `RECIPE_EADR` environment variables
//! override them.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Calibrated default: nanoseconds charged for the first `clwb` of a cache line in a
/// fence epoch. Best fit of the 2026-07-28 `bench --bin calibrate` grid search
/// (36 points × 7 ordering constraints, reduced YCSB matrix at 60k/60k/4t): all
/// seven Figure 4–5 orderings hold with a +28% minimum margin. See README
/// "Latency calibration".
pub const DEFAULT_CLWB_NS: u64 = 120;
/// Calibrated default: nanoseconds charged per store fence (same calibration run
/// as [`DEFAULT_CLWB_NS`]; the WPQ-drain cost dominates flush-per-entry indexes).
pub const DEFAULT_FENCE_NS: u64 = 180;
/// Calibrated default: nanoseconds charged per index-node visit (the Optane read
/// penalty on the LLC-miss proxy; same calibration run as [`DEFAULT_CLWB_NS`]).
pub const DEFAULT_READ_NS: u64 = 40;

/// A thread's accumulated unpaid charge is busy-waited away once it reaches this
/// many nanoseconds. Small enough to keep per-operation latency sampling honest,
/// large enough that the `Instant` overhead (~25 ns) stays below ~1% of the wait.
pub const PAY_GRANULARITY_NS: u64 = 4_096;

/// Upper bound on distinct lines tracked per thread per fence epoch; beyond it the
/// epoch set is cleared (an index that flushes tens of thousands of lines without
/// fencing is not modelling RECIPE-style conversions anyway). Bounds memory.
const MAX_EPOCH_LINES: usize = 1 << 15;

/// The installed (process-global) model, as four atomics so the fast path is a few
/// relaxed loads. `MODEL_EPOCH` bumps on every install; threads drop their dedup
/// state when they observe a new model.
static CLWB_NS: AtomicU64 = AtomicU64::new(0);
static FENCE_NS: AtomicU64 = AtomicU64::new(0);
static READ_NS: AtomicU64 = AtomicU64::new(0);
static EADR: AtomicBool = AtomicBool::new(false);
static MODEL_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Globally accumulated charged nanoseconds, by charge kind.
static CHARGED_CLWB: AtomicU64 = AtomicU64::new(0);
static CHARGED_FENCE: AtomicU64 = AtomicU64::new(0);
static CHARGED_READ: AtomicU64 = AtomicU64::new(0);

struct ThreadLat {
    /// Lines already charged a flush in the current fence epoch (write combining).
    epoch_lines: HashSet<usize>,
    /// The model epoch `epoch_lines` belongs to.
    model_epoch: u64,
    /// Charged-but-not-yet-waited nanoseconds.
    debt_ns: u64,
    /// Thread-local charged mirrors (exact-accounting tests, like `stats`).
    charged: [u64; 3],
}

thread_local! {
    static TL: RefCell<ThreadLat> = RefCell::new(ThreadLat {
        epoch_lines: HashSet::new(),
        model_epoch: 0,
        debt_ns: 0,
        charged: [0; 3],
    });
}

/// The simulated PM cost model. Install one with [`Model::install`]; the flush/fence
/// primitives and the node-visit counter consult the installed model on every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Model {
    /// Nanoseconds charged for the first flush of a cache line within a fence epoch
    /// (repeats of the same line are free until the next fence).
    pub clwb_ns: u64,
    /// Nanoseconds charged per store fence.
    pub fence_ns: u64,
    /// Nanoseconds charged per index-node visit (Optane read latency on the
    /// LLC-miss proxy).
    pub read_ns: u64,
    /// eADR platform: flushes cost nothing (caches are persistent), fences keep
    /// their cost.
    pub eadr: bool,
}

impl Model {
    /// The free model: nothing is charged, nothing busy-waits. Installed at process
    /// start so tests run at full speed.
    pub const ZERO: Model = Model { clwb_ns: 0, fence_ns: 0, read_ns: 0, eadr: false };

    /// The calibrated Optane-like defaults (see the module docs and README for the
    /// calibration run that picked them).
    pub const CALIBRATED: Model = Model {
        clwb_ns: DEFAULT_CLWB_NS,
        fence_ns: DEFAULT_FENCE_NS,
        read_ns: DEFAULT_READ_NS,
        eadr: false,
    };

    /// Install this model process-wide. Threads start a fresh dedup epoch the next
    /// time they flush under the new model.
    pub fn install(self) {
        CLWB_NS.store(self.clwb_ns, Ordering::Relaxed);
        FENCE_NS.store(self.fence_ns, Ordering::Relaxed);
        READ_NS.store(self.read_ns, Ordering::Relaxed);
        EADR.store(self.eadr, Ordering::Relaxed);
        MODEL_EPOCH.fetch_add(1, Ordering::Relaxed);
    }

    /// The currently installed model.
    #[must_use]
    pub fn current() -> Model {
        Model {
            clwb_ns: CLWB_NS.load(Ordering::Relaxed),
            fence_ns: FENCE_NS.load(Ordering::Relaxed),
            read_ns: READ_NS.load(Ordering::Relaxed),
            eadr: EADR.load(Ordering::Relaxed),
        }
    }

    /// Effective per-first-flush charge: zero under eADR.
    #[must_use]
    pub fn effective_clwb_ns(&self) -> u64 {
        if self.eadr {
            0
        } else {
            self.clwb_ns
        }
    }

    /// Build the model from the `RECIPE_CLWB_NS` / `RECIPE_FENCE_NS` /
    /// `RECIPE_READ_NS` / `RECIPE_EADR` environment variables, defaulting each
    /// unset variable to its **calibrated** constant. Malformed values fall back to
    /// the default and are reported with a warning on stderr (they used to be
    /// silently treated as 0).
    #[must_use]
    pub fn from_env() -> Model {
        let get = |k: &str| std::env::var(k).ok();
        let (clwb_ns, w1) = parse_ns("RECIPE_CLWB_NS", get("RECIPE_CLWB_NS"), DEFAULT_CLWB_NS);
        let (fence_ns, w2) = parse_ns("RECIPE_FENCE_NS", get("RECIPE_FENCE_NS"), DEFAULT_FENCE_NS);
        let (read_ns, w3) = parse_ns("RECIPE_READ_NS", get("RECIPE_READ_NS"), DEFAULT_READ_NS);
        let (eadr, w4) = parse_flag("RECIPE_EADR", get("RECIPE_EADR"), false);
        for w in [w1, w2, w3, w4].into_iter().flatten() {
            eprintln!("warning: {w}");
        }
        Model { clwb_ns, fence_ns, read_ns, eadr }
    }

    /// [`Model::from_env`] followed by [`Model::install`]; returns the installed
    /// model. The one-liner every benchmark binary calls at startup.
    pub fn install_from_env() -> Model {
        let m = Model::from_env();
        m.install();
        m
    }

    /// `true` when this model never charges anything.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.effective_clwb_ns() == 0 && self.fence_ns == 0 && self.read_ns == 0
    }
}

/// Parse an environment variable's nanosecond value: `None` (unset) gives
/// `default`; a malformed value gives `default` plus a warning message. Pure, so
/// tests cover it without touching the process environment.
#[must_use]
pub fn parse_ns(key: &str, raw: Option<String>, default: u64) -> (u64, Option<String>) {
    match raw {
        None => (default, None),
        Some(v) => match v.trim().parse::<u64>() {
            Ok(n) => (n, None),
            Err(_) => (
                default,
                Some(format!("{key}={v:?} is not a non-negative integer; using default {default}")),
            ),
        },
    }
}

/// Parse a boolean environment flag (`1`/`true`/`yes` on, `0`/`false`/`no`/empty
/// off, case-insensitive); malformed values give `default` plus a warning.
#[must_use]
pub fn parse_flag(key: &str, raw: Option<String>, default: bool) -> (bool, Option<String>) {
    match raw {
        None => (default, None),
        Some(v) => match v.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "yes" | "on" => (true, None),
            "" | "0" | "false" | "no" | "off" => (false, None),
            _ => (
                default,
                Some(format!("{key}={v:?} is not a boolean flag; using default {default}")),
            ),
        },
    }
}

/// A snapshot of charged simulated nanoseconds, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChargedNs {
    /// Nanoseconds charged to cache-line flushes (first flush per line per epoch).
    pub clwb_ns: u64,
    /// Nanoseconds charged to fences.
    pub fence_ns: u64,
    /// Nanoseconds charged to node-visit reads.
    pub read_ns: u64,
}

impl ChargedNs {
    /// Total charged nanoseconds across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.clwb_ns + self.fence_ns + self.read_ns
    }

    /// Kind-wise difference `self - earlier`, saturating at zero.
    #[must_use]
    pub fn since(&self, earlier: &ChargedNs) -> ChargedNs {
        ChargedNs {
            clwb_ns: self.clwb_ns.saturating_sub(earlier.clwb_ns),
            fence_ns: self.fence_ns.saturating_sub(earlier.fence_ns),
            read_ns: self.read_ns.saturating_sub(earlier.read_ns),
        }
    }
}

/// Snapshot the globally accumulated charges (all threads).
#[must_use]
pub fn charged() -> ChargedNs {
    ChargedNs {
        clwb_ns: CHARGED_CLWB.load(Ordering::Relaxed),
        fence_ns: CHARGED_FENCE.load(Ordering::Relaxed),
        read_ns: CHARGED_READ.load(Ordering::Relaxed),
    }
}

/// Snapshot the calling thread's charges only. Use for exact-accounting tests:
/// like [`crate::stats::snapshot_local`], it cannot be perturbed by concurrent
/// threads.
#[must_use]
pub fn charged_local() -> ChargedNs {
    TL.with(|t| {
        let t = t.borrow();
        ChargedNs { clwb_ns: t.charged[0], fence_ns: t.charged[1], read_ns: t.charged[2] }
    })
}

#[inline]
fn busy_wait(ns: u64) {
    if ns == 0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_nanos(ns);
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Charge `ns` of the given kind (0 = clwb, 1 = fence, 2 = read) on this thread:
/// record it, then pay accumulated debt once it crosses the granularity.
#[inline]
fn charge(t: &mut ThreadLat, kind: usize, ns: u64) {
    if ns == 0 {
        return;
    }
    [&CHARGED_CLWB, &CHARGED_FENCE, &CHARGED_READ][kind].fetch_add(ns, Ordering::Relaxed);
    t.charged[kind] += ns;
    t.debt_ns += ns;
    if t.debt_ns >= PAY_GRANULARITY_NS {
        let pay = t.debt_ns;
        t.debt_ns = 0;
        busy_wait(pay);
    }
}

impl ThreadLat {
    /// Drop dedup state from a previous model installation.
    #[inline]
    fn sync_model_epoch(&mut self) {
        let now = MODEL_EPOCH.load(Ordering::Relaxed);
        if self.model_epoch != now {
            self.model_epoch = now;
            self.epoch_lines.clear();
            self.debt_ns = 0;
        }
    }
}

/// Price one cache-line flush of `line` (called by [`crate::flush::clwb`]).
#[inline]
pub(crate) fn on_clwb(line: usize) {
    let m = Model::current();
    if m.effective_clwb_ns() == 0 {
        return;
    }
    TL.with(|t| {
        let t = &mut *t.borrow_mut();
        t.sync_model_epoch();
        if t.epoch_lines.len() >= MAX_EPOCH_LINES {
            t.epoch_lines.clear();
        }
        if t.epoch_lines.insert(line) {
            charge(t, 0, m.clwb_ns);
        }
    });
}

/// Price one store fence (called by [`crate::flush::sfence`]): closes the calling
/// thread's flush-dedup epoch and charges the fence cost.
#[inline]
pub(crate) fn on_fence() {
    let m = Model::current();
    if m.effective_clwb_ns() == 0 && m.fence_ns == 0 {
        return;
    }
    TL.with(|t| {
        let t = &mut *t.borrow_mut();
        t.sync_model_epoch();
        t.epoch_lines.clear();
        charge(t, 1, m.fence_ns);
    });
}

/// Price `n` node visits (called by [`crate::stats::record_node_visit`]).
#[inline]
pub(crate) fn on_node_visits(n: u64) {
    let m = Model::current();
    if m.read_ns == 0 || n == 0 {
        return;
    }
    TL.with(|t| {
        let t = &mut *t.borrow_mut();
        t.sync_model_epoch();
        charge(t, 2, m.read_ns.saturating_mul(n));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// The installed model is process-global; tests that install one serialize and
    /// restore [`Model::ZERO`] before releasing the lock.
    static MODEL_LOCK: Mutex<()> = Mutex::new(());

    fn with_model<R>(m: Model, f: impl FnOnce() -> R) -> R {
        let _g = MODEL_LOCK.lock();
        m.install();
        let r = f();
        Model::ZERO.install();
        r
    }

    #[test]
    fn repeated_flush_of_one_line_charges_once_per_epoch() {
        let m = Model { clwb_ns: 100, fence_ns: 30, read_ns: 0, eadr: false };
        with_model(m, || {
            let before = charged_local();
            for _ in 0..10 {
                on_clwb(0x40);
            }
            on_fence();
            // New epoch: the same line is charged again.
            on_clwb(0x40);
            let d = charged_local().since(&before);
            assert_eq!(d.clwb_ns, 200, "one charge per epoch, two epochs");
            assert_eq!(d.fence_ns, 30);
            assert_eq!(d.total(), 230);
        });
    }

    #[test]
    fn distinct_lines_each_charge_within_an_epoch() {
        let m = Model { clwb_ns: 50, fence_ns: 0, read_ns: 0, eadr: false };
        with_model(m, || {
            let before = charged_local();
            on_clwb(0);
            on_clwb(64);
            on_clwb(128);
            on_clwb(64); // dup
            let d = charged_local().since(&before);
            assert_eq!(d.clwb_ns, 150);
        });
    }

    #[test]
    fn eadr_zeroes_flush_cost_but_keeps_fences() {
        let m = Model { clwb_ns: 500, fence_ns: 70, read_ns: 0, eadr: true };
        assert_eq!(m.effective_clwb_ns(), 0);
        with_model(m, || {
            let before = charged_local();
            on_clwb(0x80);
            on_clwb(0xC0);
            on_fence();
            let d = charged_local().since(&before);
            assert_eq!(d.clwb_ns, 0, "eADR: flushes are free");
            assert_eq!(d.fence_ns, 70, "eADR: fences keep their ordering cost");
        });
    }

    #[test]
    fn node_visits_charge_read_latency() {
        let m = Model { clwb_ns: 0, fence_ns: 0, read_ns: 40, eadr: false };
        with_model(m, || {
            let before = charged_local();
            on_node_visits(1);
            on_node_visits(5);
            let d = charged_local().since(&before);
            assert_eq!(d.read_ns, 240);
            assert_eq!(d.clwb_ns + d.fence_ns, 0);
        });
    }

    #[test]
    fn zero_model_charges_nothing() {
        with_model(Model::ZERO, || {
            let before = charged_local();
            on_clwb(0);
            on_fence();
            on_node_visits(100);
            assert_eq!(charged_local().since(&before), ChargedNs::default());
        });
    }

    #[test]
    fn model_reinstall_opens_a_fresh_epoch() {
        let a = Model { clwb_ns: 10, fence_ns: 0, read_ns: 0, eadr: false };
        let _g = MODEL_LOCK.lock();
        a.install();
        let before = charged_local();
        on_clwb(0x1000);
        a.install(); // same constants, new epoch
        on_clwb(0x1000);
        let d = charged_local().since(&before);
        Model::ZERO.install();
        assert_eq!(d.clwb_ns, 20, "reinstall must clear per-thread dedup state");
    }

    #[test]
    fn parse_ns_defaults_and_warns() {
        assert_eq!(parse_ns("K", None, 7), (7, None));
        assert_eq!(parse_ns("K", Some("123".into()), 7), (123, None));
        assert_eq!(parse_ns("K", Some(" 55 ".into()), 7), (55, None));
        let (v, warn) = parse_ns("RECIPE_CLWB_NS", Some("fast".into()), 120);
        assert_eq!(v, 120, "malformed values fall back to the default, not 0");
        let warn = warn.expect("malformed value must warn");
        assert!(warn.contains("RECIPE_CLWB_NS") && warn.contains("120"), "{warn}");
        let (v, warn) = parse_ns("K", Some("-3".into()), 9);
        assert_eq!(v, 9);
        assert!(warn.is_some());
    }

    #[test]
    fn parse_flag_accepts_common_spellings() {
        for on in ["1", "true", "YES", "on"] {
            assert_eq!(parse_flag("K", Some(on.into()), false), (true, None), "{on}");
        }
        for off in ["0", "false", "No", "off", ""] {
            assert_eq!(parse_flag("K", Some(off.into()), true), (false, None), "{off}");
        }
        let (v, warn) = parse_flag("RECIPE_EADR", Some("maybe".into()), false);
        assert!(!v && warn.is_some());
    }

    #[test]
    fn charged_local_ignores_other_threads() {
        let m = Model { clwb_ns: 100, fence_ns: 100, read_ns: 100, eadr: false };
        with_model(m, || {
            let before = charged_local();
            std::thread::spawn(|| {
                on_clwb(0);
                on_fence();
                on_node_visits(3);
            })
            .join()
            .unwrap();
            assert_eq!(charged_local().since(&before), ChargedNs::default());
        });
    }

    #[test]
    fn calibrated_defaults_are_non_zero_and_asymmetric() {
        let m = Model::CALIBRATED;
        assert!(m.clwb_ns > 0 && m.fence_ns > 0 && m.read_ns > 0);
        assert!(!m.eadr);
        assert!(!m.is_zero());
        assert!(Model::ZERO.is_zero());
    }
}
