//! # `pm` — simulated persistent-memory substrate
//!
//! The RECIPE paper evaluates its converted indexes on Intel Optane DC Persistent
//! Memory. This crate provides the substrate that every index in this workspace uses
//! instead of real PM hardware:
//!
//! * [`flush`] — `clwb` / `sfence` analogues. Each call is counted (for the paper's
//!   per-operation instruction counters, Fig. 4c/4d and Table 4), priced by the
//!   installed [`latency`] model (so flush-heavy indexes are measurably slower,
//!   reproducing the *shape* of the paper's throughput results), and reported to the
//!   durability [`tracker`].
//! * [`latency`] — the calibrated, asymmetric Optane-like cost model: per-visit read
//!   charges, per-cacheline flush coalescing within a fence epoch, an eADR mode, and
//!   deterministic charged-ns accounting.
//! * [`stats`] — global counters: cache-line flushes, fences, and node visits (a proxy
//!   for last-level-cache misses: every pointer chase into an index node is counted).
//! * [`alloc`] — allocation helpers that register new PM objects with the durability
//!   tracker, mirroring the paper's PIN-based tracing of `malloc`/`new`.
//! * [`tracker`] — shadow cache-line state machine (dirty → flush-pending → durable)
//!   used by the §5 durability test: "all dirtied cache lines in allocated memory
//!   ranges are flushed to PM".
//! * [`crash`] — named crash sites placed between the atomic steps of insert and
//!   structure-modification operations, implementing the paper's targeted
//!   crash-state generation (§5).
//! * [`obs_bridge`] — registers an `obs` collector so one `obs::snapshot()`
//!   export carries the substrate's counters, per-mapping probes, and
//!   charged-ns breakdown alongside the rest of the stack's metrics.
//!
//! The substrate is deliberately process-local and heap-backed: the paper itself notes
//! that its crash-recovery methodology "does not require actual PM; we are able to
//! emulate crashes using DRAM" (§5).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod alloc;
pub mod crash;
pub mod flush;
pub mod latency;
pub mod obs_bridge;
pub mod stats;
pub mod tracker;

/// Size of a cache line on the simulated machine, in bytes.
///
/// All flush accounting and durability tracking is performed at this granularity,
/// matching the paper's use of `clwb` on 64-byte lines.
pub const CACHE_LINE: usize = 64;

/// Round an address down to the start of its cache line.
#[inline]
pub fn line_of(addr: usize) -> usize {
    addr & !(CACHE_LINE - 1)
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash step.
///
/// The single source of the pseudo-random mixing used across the workspace
/// (crash-point selection, sweep state derivation, sharded workload
/// generation), so every deterministic stream stays in sync with one
/// definition.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_rounds_down() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(65), 64);
        assert_eq!(line_of(128 + 17), 128);
    }

    #[test]
    fn cache_line_is_power_of_two() {
        assert!(CACHE_LINE.is_power_of_two());
    }
}
