//! Global performance counters for the simulated PM substrate.
//!
//! The paper explains its throughput results with three low-level counters collected
//! per operation (Fig. 4c, Fig. 4d, Table 4): the number of `clwb` instructions, the
//! number of memory fences, and the number of last-level-cache misses. This module
//! provides the first two directly and a *node visit* counter as the LLC-miss proxy
//! (each pointer dereference into an index node is one likely-cold cache line touch).
//!
//! Counters are process-global relaxed atomics. Benchmarks snapshot them before and
//! after a measurement phase and divide the delta by the number of operations; the
//! per-increment cost (a relaxed `fetch_add`) is negligible relative to index work.
//!
//! Every event is additionally recorded in a **thread-local** mirror, snapshotted
//! with [`snapshot_local`]. Tests that assert exact counter deltas for work done on
//! their own thread must use the local snapshot: the global counters are shared by
//! every test in the binary and libtest runs tests concurrently.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static CLWB: AtomicU64 = AtomicU64::new(0);
static FENCE: AtomicU64 = AtomicU64::new(0);
static NODE_VISITS: AtomicU64 = AtomicU64::new(0);
static PROBES: [AtomicU64; Mapping::COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    static TL_CLWB: Cell<u64> = const { Cell::new(0) };
    static TL_FENCE: Cell<u64> = const { Cell::new(0) };
    static TL_NODE_VISITS: Cell<u64> = const { Cell::new(0) };
    static TL_PROBES: Cell<[u64; Mapping::COUNT]> = const { Cell::new([0; Mapping::COUNT]) };
}

/// The intra-node key-search *mappings* the tries use, for per-mapping probe
/// accounting.
///
/// A **probe** is one candidate key slot examined during an intra-node search —
/// the work the vectorized search paths do in bulk. The count is defined by the
/// node's occupancy, not by the dispatch path, so SWAR, SIMD and scalar runs of
/// the same workload report identical probe counts (this is what makes the
/// counter usable as deterministic evidence on a 1-core host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// ART Node4: linear keyed mapping, up to 4 slots probed.
    ArtN4 = 0,
    /// ART Node16: linear keyed mapping, up to 16 slots probed.
    ArtN16 = 1,
    /// ART Node48: indirect index array, exactly 1 probe.
    ArtN48 = 2,
    /// ART Node256: direct array, exactly 1 probe.
    ArtN256 = 3,
    /// HOT plain node: direct bit-window index, exactly 1 probe.
    HotNode = 4,
    /// HOT compound node: sparse partial-key array, occupancy slots probed.
    HotCompound = 5,
    /// APEX data node: model-predicted probe + bounded exponential search, so
    /// the count is a direct measure of model accuracy (1 = perfect prediction).
    ApexNode = 6,
}

impl Mapping {
    /// Number of distinct mappings.
    pub const COUNT: usize = 7;

    /// Every mapping, in counter order.
    pub const ALL: [Mapping; Mapping::COUNT] = [
        Mapping::ArtN4,
        Mapping::ArtN16,
        Mapping::ArtN48,
        Mapping::ArtN256,
        Mapping::HotNode,
        Mapping::HotCompound,
        Mapping::ApexNode,
    ];

    /// Short stable label for reports/CSV.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mapping::ArtN4 => "art_n4",
            Mapping::ArtN16 => "art_n16",
            Mapping::ArtN48 => "art_n48",
            Mapping::ArtN256 => "art_n256",
            Mapping::HotNode => "hot_node",
            Mapping::HotCompound => "hot_compound",
            Mapping::ApexNode => "apex_node",
        }
    }
}

/// A snapshot of the per-mapping probe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Probes per mapping, indexed by `Mapping as usize`.
    pub per_mapping: [u64; Mapping::COUNT],
}

impl ProbeStats {
    /// Counter-wise difference `self - earlier`, saturating at zero.
    #[must_use]
    pub fn since(&self, earlier: &ProbeStats) -> ProbeStats {
        let mut out = ProbeStats::default();
        for (i, o) in out.per_mapping.iter_mut().enumerate() {
            *o = self.per_mapping[i].saturating_sub(earlier.per_mapping[i]);
        }
        out
    }

    /// Probes recorded for one mapping.
    #[must_use]
    pub fn get(&self, m: Mapping) -> u64 {
        self.per_mapping[m as usize]
    }

    /// Total probes across all mappings.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_mapping.iter().sum()
    }
}

/// Record `n` key-slot probes for mapping `m`.
#[inline]
pub fn record_probes(m: Mapping, n: u64) {
    PROBES[m as usize].fetch_add(n, Ordering::Relaxed);
    TL_PROBES.with(|c| {
        let mut a = c.get();
        a[m as usize] += n;
        c.set(a);
    });
}

/// Take a snapshot of the global per-mapping probe counters.
pub fn probes() -> ProbeStats {
    let mut out = ProbeStats::default();
    for (i, o) in out.per_mapping.iter_mut().enumerate() {
        *o = PROBES[i].load(Ordering::Relaxed);
    }
    out
}

/// Take a snapshot of the calling thread's probe counters only (see
/// [`snapshot_local`] for why tests should prefer this).
pub fn probes_local() -> ProbeStats {
    ProbeStats { per_mapping: TL_PROBES.with(Cell::get) }
}

/// A snapshot of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of cache-line flush (`clwb`) operations issued.
    pub clwb: u64,
    /// Number of store fences (`sfence`/`mfence`) issued.
    pub fence: u64,
    /// Number of index-node visits (LLC-miss proxy).
    pub node_visits: u64,
}

impl Stats {
    /// Counter-wise difference `self - earlier`, saturating at zero.
    #[must_use]
    pub fn since(&self, earlier: &Stats) -> Stats {
        Stats {
            clwb: self.clwb.saturating_sub(earlier.clwb),
            fence: self.fence.saturating_sub(earlier.fence),
            node_visits: self.node_visits.saturating_sub(earlier.node_visits),
        }
    }

    /// Per-operation averages given the number of operations in the phase.
    #[must_use]
    pub fn per_op(&self, ops: u64) -> PerOp {
        let ops = ops.max(1) as f64;
        PerOp {
            clwb: self.clwb as f64 / ops,
            fence: self.fence as f64 / ops,
            node_visits: self.node_visits as f64 / ops,
        }
    }
}

/// Per-operation averages derived from a [`Stats`] delta.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerOp {
    /// Average `clwb` per operation.
    pub clwb: f64,
    /// Average fences per operation.
    pub fence: f64,
    /// Average node visits per operation.
    pub node_visits: f64,
}

/// Take a snapshot of the global counters.
pub fn snapshot() -> Stats {
    Stats {
        clwb: CLWB.load(Ordering::Relaxed),
        fence: FENCE.load(Ordering::Relaxed),
        node_visits: NODE_VISITS.load(Ordering::Relaxed),
    }
}

/// Take a snapshot of the calling thread's counters only.
///
/// Use this (not [`snapshot`]) to assert exact deltas for single-threaded work:
/// it cannot be perturbed by concurrent threads — including other tests in the
/// same binary, which libtest runs in parallel.
pub fn snapshot_local() -> Stats {
    Stats {
        clwb: TL_CLWB.with(Cell::get),
        fence: TL_FENCE.with(Cell::get),
        node_visits: TL_NODE_VISITS.with(Cell::get),
    }
}

/// Reset all counters to zero. Intended for test isolation; benchmarks should prefer
/// snapshot deltas because other threads may still be running.
pub fn reset() {
    CLWB.store(0, Ordering::Relaxed);
    FENCE.store(0, Ordering::Relaxed);
    NODE_VISITS.store(0, Ordering::Relaxed);
    for p in &PROBES {
        p.store(0, Ordering::Relaxed);
    }
}

#[inline]
pub(crate) fn count_clwb() {
    CLWB.fetch_add(1, Ordering::Relaxed);
    TL_CLWB.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_fence() {
    FENCE.fetch_add(1, Ordering::Relaxed);
    TL_FENCE.with(|c| c.set(c.get() + 1));
}

/// Record one index-node visit (pointer dereference into a node).
///
/// Indexes call this on every node they traverse; the benchmark harness reports the
/// per-operation average as the cache-miss proxy for Fig. 4c/4d and Table 4. The
/// installed [`crate::latency::Model`] additionally charges its Optane read latency
/// (`read_ns`) per visit.
#[inline]
pub fn record_node_visit() {
    NODE_VISITS.fetch_add(1, Ordering::Relaxed);
    TL_NODE_VISITS.with(|c| c.set(c.get() + 1));
    crate::latency::on_node_visits(1);
}

/// Record `n` node visits at once.
#[inline]
pub fn record_node_visits(n: u64) {
    NODE_VISITS.fetch_add(n, Ordering::Relaxed);
    TL_NODE_VISITS.with(|c| c.set(c.get() + n));
    crate::latency::on_node_visits(n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_and_per_op() {
        let global_before = snapshot();
        let before = snapshot_local();
        count_clwb();
        count_clwb();
        count_fence();
        record_node_visit();
        record_node_visits(3);
        let d = snapshot_local().since(&before);
        assert_eq!(d.clwb, 2);
        assert_eq!(d.fence, 1);
        assert_eq!(d.node_visits, 4);
        // The global counters move too (at least by this thread's contribution).
        let g = snapshot().since(&global_before);
        assert!(g.clwb >= 2 && g.fence >= 1 && g.node_visits >= 4);
        let p = d.per_op(2);
        assert!((p.clwb - 1.0).abs() < 1e-9);
        assert!((p.fence - 0.5).abs() < 1e-9);
        assert!((p.node_visits - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_op_handles_zero_ops() {
        let s = Stats { clwb: 10, fence: 5, node_visits: 2 };
        let p = s.per_op(0);
        assert!((p.clwb - 10.0).abs() < 1e-9);
    }

    #[test]
    fn since_saturates() {
        let a = Stats { clwb: 1, fence: 1, node_visits: 1 };
        let b = Stats { clwb: 5, fence: 5, node_visits: 5 };
        let d = a.since(&b);
        assert_eq!(d, Stats::default());
    }

    #[test]
    fn probe_counters_are_per_mapping() {
        let before = probes_local();
        let global_before = probes();
        record_probes(Mapping::ArtN16, 16);
        record_probes(Mapping::ArtN16, 4);
        record_probes(Mapping::HotCompound, 9);
        let d = probes_local().since(&before);
        assert_eq!(d.get(Mapping::ArtN16), 20);
        assert_eq!(d.get(Mapping::HotCompound), 9);
        assert_eq!(d.get(Mapping::ArtN4), 0);
        assert_eq!(d.total(), 29);
        let g = probes().since(&global_before);
        assert!(g.get(Mapping::ArtN16) >= 20 && g.get(Mapping::HotCompound) >= 9);
        // Labels are stable and unique.
        let labels: std::collections::BTreeSet<_> =
            Mapping::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Mapping::COUNT);
    }

    #[test]
    fn probe_local_snapshot_ignores_other_threads() {
        let before = probes_local();
        std::thread::spawn(|| record_probes(Mapping::ArtN4, 5)).join().unwrap();
        assert_eq!(probes_local().since(&before), ProbeStats::default());
    }

    #[test]
    fn local_snapshot_ignores_other_threads() {
        let before = snapshot_local();
        std::thread::spawn(|| {
            count_clwb();
            count_fence();
            record_node_visit();
        })
        .join()
        .unwrap();
        assert_eq!(snapshot_local().since(&before), Stats::default());
        count_clwb();
        assert_eq!(snapshot_local().since(&before).clwb, 1);
    }
}
