//! Targeted crash injection at atomic-step boundaries (§5 of the paper).
//!
//! The paper's crash-recovery testing methodology observes that inserts and structure
//! modification operations in the studied indexes consist of a *small number of
//! ordered atomic steps* (fewer than five), so it is sufficient to simulate a crash
//! after each atomic store rather than at every instruction. A simulated crash simply
//! returns from the operation mid-way "without cleaning up any state, leaving the
//! index in a partially modified state".
//!
//! Index implementations in this workspace call [`site`] with a stable name at every
//! such boundary (e.g. `"art.path_split.after_new_node"`). The crash-test harness arms
//! one of several modes:
//!
//! * [`arm_nth`] — crash at the n-th site hit (deterministic enumeration of crash
//!   states across a workload),
//! * [`arm_probability`] — crash each site hit with probability `p` (the paper's
//!   probabilistic mode),
//! * [`arm_at_site`] — crash at the k-th hit of one named site,
//! * [`arm_count_only`] — never crash, just count site hits (used to size the
//!   enumeration).
//!
//! A triggered crash unwinds the current operation by panicking with a [`CrashPanic`]
//! payload; the harness catches the unwind, treats the process as "restarted", calls
//! the index's recovery hook (lock re-initialisation), and continues the workload.
//! Only one crash fires per arming.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Panic payload identifying a simulated crash. Carries the name of the crash site
/// that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPanic(pub &'static str);

const MODE_OFF: u8 = 0;
const MODE_NTH: u8 = 1;
const MODE_PROB: u8 = 2;
const MODE_SITE: u8 = 3;
const MODE_COUNT: u8 = 4;

static MODE: AtomicU8 = AtomicU8::new(MODE_OFF);
static HITS: AtomicU64 = AtomicU64::new(0);
static PARAM: AtomicU64 = AtomicU64::new(0);
static CRASHED: AtomicBool = AtomicBool::new(false);
static RNG_STATE: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);
static TARGET_SITE: Mutex<Option<&'static str>> = Mutex::new(None);
static LAST_CRASH_SITE: Mutex<Option<&'static str>> = Mutex::new(None);
/// Fast-path gate for per-name accounting: checked with a relaxed load before
/// touching the map's mutex, so multi-threaded phases that run armed but with
/// accounting off never serialize on it.
static NAMED_ENABLED: AtomicBool = AtomicBool::new(false);
static NAMED_HITS: Mutex<Option<HashMap<&'static str, u64>>> = Mutex::new(None);

/// Disarm crash injection entirely (the default).
pub fn disarm() {
    MODE.store(MODE_OFF, Ordering::SeqCst);
    CRASHED.store(false, Ordering::SeqCst);
    HITS.store(0, Ordering::SeqCst);
    *TARGET_SITE.lock() = None;
    *LAST_CRASH_SITE.lock() = None;
}

/// Arm a crash at the `n`-th crash-site hit (1-based) from now on.
pub fn arm_nth(n: u64) {
    disarm();
    PARAM.store(n.max(1), Ordering::SeqCst);
    MODE.store(MODE_NTH, Ordering::SeqCst);
}

/// Arm probabilistic crashing: each site hit crashes with probability
/// `per_million / 1_000_000`. `seed` makes the pseudo-random sequence reproducible.
pub fn arm_probability(per_million: u64, seed: u64) {
    disarm();
    RNG_STATE.store(seed | 1, Ordering::SeqCst);
    PARAM.store(per_million.min(1_000_000), Ordering::SeqCst);
    MODE.store(MODE_PROB, Ordering::SeqCst);
}

/// Arm a crash at the `hit`-th (1-based) execution of the named site.
pub fn arm_at_site(name: &'static str, hit: u64) {
    disarm();
    *TARGET_SITE.lock() = Some(name);
    PARAM.store(hit.max(1), Ordering::SeqCst);
    MODE.store(MODE_SITE, Ordering::SeqCst);
}

/// Count site hits without ever crashing.
pub fn arm_count_only() {
    disarm();
    MODE.store(MODE_COUNT, Ordering::SeqCst);
}

/// Total crash-site hits since the last arming.
pub fn sites_hit() -> u64 {
    HITS.load(Ordering::SeqCst)
}

/// Whether a simulated crash has fired since the last arming.
pub fn has_crashed() -> bool {
    CRASHED.load(Ordering::SeqCst)
}

/// Name of the site at which the last simulated crash fired, if any.
pub fn last_crash_site() -> Option<&'static str> {
    *LAST_CRASH_SITE.lock()
}

/// Start (or restart) per-name site-hit accounting with empty counters.
///
/// While enabled, every site hit under *any* armed mode (including
/// [`arm_count_only`]) is tallied by name. Accounting survives [`disarm`] and
/// re-arming, so a test harness can accumulate coverage across many crash states;
/// call [`stop_named_counts`] to turn it off again. The §5 coverage report is built
/// from these counters.
pub fn start_named_counts() {
    *NAMED_HITS.lock() = Some(HashMap::new());
    NAMED_ENABLED.store(true, Ordering::SeqCst);
}

/// Stop per-name accounting and drop the counters.
pub fn stop_named_counts() {
    NAMED_ENABLED.store(false, Ordering::SeqCst);
    *NAMED_HITS.lock() = None;
}

/// Snapshot of the per-name site-hit counters (empty if accounting is off).
#[must_use]
pub fn named_counts() -> Vec<(&'static str, u64)> {
    NAMED_HITS
        .lock()
        .as_ref()
        .map(|m| m.iter().map(|(k, v)| (*k, *v)).collect())
        .unwrap_or_default()
}

/// Hits recorded for one named site since [`start_named_counts`] (0 if accounting
/// is off or the site never fired).
#[must_use]
pub fn named_count(name: &str) -> u64 {
    NAMED_HITS.lock().as_ref().and_then(|m| m.get(name).copied()).unwrap_or(0)
}

#[inline]
fn next_rand() -> u64 {
    // SplitMix64 step on a shared atomic state; collisions between threads only make
    // the sequence less predictable, which is fine for crash fuzzing.
    crate::mix64(RNG_STATE.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed))
}

#[cold]
fn fire(name: &'static str) -> ! {
    MODE.store(MODE_OFF, Ordering::SeqCst);
    CRASHED.store(true, Ordering::SeqCst);
    *LAST_CRASH_SITE.lock() = Some(name);
    obs::event::emit("crash.fire", name, 0, 0);
    std::panic::panic_any(CrashPanic(name));
}

/// Declare a crash site. Index code calls this between the ordered atomic steps of an
/// insert or structure-modification operation. If crash injection is armed and this
/// hit is selected, the function does not return: it unwinds with a [`CrashPanic`]
/// payload, leaving the index in the partially-modified state the operation had built
/// so far.
#[inline]
pub fn site(name: &'static str) {
    let mode = MODE.load(Ordering::Relaxed);
    if mode == MODE_OFF {
        return;
    }
    site_slow(mode, name);
}

#[inline(never)]
fn site_slow(mode: u8, name: &'static str) {
    if NAMED_ENABLED.load(Ordering::Relaxed) {
        if let Some(map) = NAMED_HITS.lock().as_mut() {
            *map.entry(name).or_insert(0) += 1;
        }
    }
    let hit = HITS.fetch_add(1, Ordering::SeqCst) + 1;
    obs::event::emit("crash.site", name, hit, 0);
    match mode {
        MODE_COUNT => {}
        MODE_NTH if hit == PARAM.load(Ordering::SeqCst) => fire(name),
        MODE_NTH => {}
        MODE_PROB => {
            let p = PARAM.load(Ordering::SeqCst);
            if next_rand() % 1_000_000 < p {
                fire(name);
            }
        }
        MODE_SITE => {
            let target = *TARGET_SITE.lock();
            if target == Some(name) {
                let remaining = PARAM.fetch_sub(1, Ordering::SeqCst);
                if remaining == 1 {
                    fire(name);
                }
            }
        }
        _ => {}
    }
}

/// Run `f`, catching a simulated crash. Returns `Ok(v)` if `f` completed, or
/// `Err(site_name)` if a [`CrashPanic`] unwound out of it. Other panics are resumed.
pub fn catch_crash<T>(f: impl FnOnce() -> T + std::panic::UnwindSafe) -> Result<T, &'static str> {
    match std::panic::catch_unwind(f) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<CrashPanic>() {
            Ok(cp) => Err(cp.0),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Install a panic hook that silences the default "thread panicked" message for
/// simulated crashes while delegating every other panic to the previous hook.
/// Idempotent enough for test use; call once from the harness.
pub fn install_quiet_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<CrashPanic>().is_some() {
            return;
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    // Crash state is global; serialize.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_sites_do_nothing() {
        let _g = LOCK.lock();
        disarm();
        site("a");
        site("b");
        assert!(!has_crashed());
        assert_eq!(sites_hit(), 0);
    }

    #[test]
    fn nth_mode_crashes_exactly_once_at_nth_hit() {
        let _g = LOCK.lock();
        install_quiet_hook();
        arm_nth(3);
        let r = catch_crash(|| {
            site("s1");
            site("s2");
            site("s3");
            site("s4");
            42
        });
        assert_eq!(r, Err("s3"));
        assert!(has_crashed());
        assert_eq!(last_crash_site(), Some("s3"));
        // After firing, further sites are inert.
        let r2 = catch_crash(|| {
            site("s5");
            7
        });
        assert_eq!(r2, Ok(7));
        disarm();
    }

    #[test]
    fn count_only_mode_counts() {
        let _g = LOCK.lock();
        arm_count_only();
        for _ in 0..10 {
            site("x");
        }
        assert_eq!(sites_hit(), 10);
        assert!(!has_crashed());
        disarm();
    }

    #[test]
    fn at_site_mode_targets_named_site() {
        let _g = LOCK.lock();
        install_quiet_hook();
        arm_at_site("target", 2);
        let r = catch_crash(|| {
            site("other");
            site("target");
            site("other");
            site("target"); // 2nd hit of "target" -> crash
            1
        });
        assert_eq!(r, Err("target"));
        disarm();
    }

    #[test]
    fn probability_zero_never_crashes() {
        let _g = LOCK.lock();
        arm_probability(0, 7);
        for _ in 0..1000 {
            site("p");
        }
        assert!(!has_crashed());
        disarm();
    }

    #[test]
    fn probability_full_crashes_immediately() {
        let _g = LOCK.lock();
        install_quiet_hook();
        arm_probability(1_000_000, 9);
        let r = catch_crash(|| {
            site("p");
            0
        });
        assert_eq!(r, Err("p"));
        disarm();
    }

    #[test]
    fn named_counts_accumulate_across_armings() {
        let _g = LOCK.lock();
        install_quiet_hook();
        start_named_counts();
        arm_count_only();
        site("alpha");
        site("alpha");
        site("beta");
        disarm();
        // Accounting must survive disarm + re-arm (coverage accumulates over states).
        arm_nth(1);
        let r = catch_crash(|| site("beta"));
        assert_eq!(r, Err("beta"));
        assert_eq!(named_count("alpha"), 2);
        assert_eq!(named_count("beta"), 2);
        assert_eq!(named_count("gamma"), 0);
        let mut all = named_counts();
        all.sort_unstable();
        assert_eq!(all, vec![("alpha", 2), ("beta", 2)]);
        stop_named_counts();
        arm_count_only();
        site("alpha");
        assert_eq!(named_count("alpha"), 0, "accounting is off");
        assert!(named_counts().is_empty());
        disarm();
    }

    #[test]
    fn catch_crash_propagates_other_panics() {
        let _g = LOCK.lock();
        disarm();
        let res = std::panic::catch_unwind(|| {
            let _ = catch_crash(|| -> u32 { panic!("real bug") });
        });
        assert!(res.is_err());
    }
}
