//! Bridge from the substrate's global telemetry into the `obs` metric
//! registry.
//!
//! The `pm` counters predate the registry and stay where they are (relaxed
//! atomics on the hot paths); this module registers an `obs` *collector*
//! that reads them at `obs::snapshot()` time, so one export contains the
//! flush/fence/visit counters, per-mapping probe counters, and the
//! charged-ns breakdown without adding a second write path.

use std::sync::Once;

/// Metric names exported by the `pm` collector, for schema checks.
pub const METRICS: &[&str] = &[
    "pm.clwb",
    "pm.fence",
    "pm.node_visits",
    "pm.probes.art_n4",
    "pm.probes.art_n16",
    "pm.probes.art_n48",
    "pm.probes.art_n256",
    "pm.probes.hot_node",
    "pm.probes.hot_compound",
    "pm.probes.apex_node",
    "pm.charged.clwb_ns",
    "pm.charged.fence_ns",
    "pm.charged.read_ns",
    "pm.charged.total_ns",
];

/// Register the `pm` collector with the `obs` registry. Idempotent; every
/// entry point that exports metrics (YCSB drivers, bench binaries) calls
/// this, so whoever snapshots first still sees the substrate counters.
pub fn install_obs() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        obs::register_collector("pm", |out| {
            use obs::{Sample, Value};
            let s = crate::stats::snapshot();
            let p = crate::stats::probes();
            let c = crate::latency::charged();
            let mut push = |name: &str, v: u64| {
                out.push(Sample { name: name.to_string(), value: Value::Counter(v) });
            };
            push("pm.clwb", s.clwb);
            push("pm.fence", s.fence);
            push("pm.node_visits", s.node_visits);
            for m in crate::stats::Mapping::ALL {
                push(&format!("pm.probes.{}", m.label()), p.get(m));
            }
            push("pm.charged.clwb_ns", c.clwb_ns);
            push("pm.charged.fence_ns", c.fence_ns);
            push("pm.charged.read_ns", c.read_ns);
            push("pm.charged.total_ns", c.total());
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_exports_every_declared_metric() {
        install_obs();
        install_obs(); // idempotent
        crate::stats::record_probes(crate::stats::Mapping::ArtN16, 4);
        let snap = obs::snapshot();
        for name in METRICS {
            assert!(
                matches!(snap.get(name), Some(obs::Value::Counter(_))),
                "metric {name} missing from snapshot"
            );
        }
        assert!(snap.counter_value("pm.probes.art_n16").unwrap() >= 4);
    }
}
