//! Cache-line flush and fence primitives for the simulated PM.
//!
//! On real hardware the RECIPE conversion inserts `clwb` (cache-line write-back) and
//! `sfence`/`mfence` instructions after stores to persistent memory. In this
//! reproduction every flush and fence goes through this module so that:
//!
//! 1. the paper's per-operation instruction counters can be collected ([`crate::stats`]),
//! 2. a configurable synthetic latency can be charged per flush/fence, letting the
//!    benchmark harness reproduce the paper's throughput *shape* (flush-heavy indexes
//!    lose) without Optane hardware, and
//! 3. the durability [`crate::tracker`] observes which cache lines became durable,
//!    implementing the §5 durability test.
//!
//! These functions take raw addresses but never dereference them; they are safe to
//! call with any pointer value.

use crate::{latency, line_of, stats, tracker, CACHE_LINE};

/// Write back (flush) the cache line containing `addr`.
///
/// Equivalent to the `clwb` instruction in the paper's conversion actions: the line is
/// queued for write-back to the persistence domain but only becomes durable once a
/// subsequent [`sfence`] completes. Counted by [`crate::stats`], observed by the
/// durability [`crate::tracker`], and priced by the installed [`latency::Model`]
/// (first flush of a line per fence epoch; repeats coalesce).
#[inline]
pub fn clwb(addr: *const u8) {
    let line = line_of(addr as usize);
    stats::count_clwb();
    tracker::on_flush(line);
    latency::on_clwb(line);
}

/// Store fence: all previously issued [`clwb`]s become durable.
///
/// Equivalent to `sfence`/`mfence` ordering in the paper. Closes the calling
/// thread's flush-coalescing epoch in the [`latency`] model.
#[inline]
pub fn sfence() {
    stats::count_fence();
    tracker::on_fence();
    latency::on_fence();
}

/// Flush every cache line overlapping `[addr, addr + len)` and optionally fence.
///
/// This is the workhorse used by the `Pmem` persistence policy: the RECIPE conversion
/// action "insert cache line flush and memory fence instructions after each store".
#[inline]
pub fn persist_range(addr: *const u8, len: usize, fence: bool) {
    if len == 0 {
        if fence {
            sfence();
        }
        return;
    }
    let start = line_of(addr as usize);
    let end = addr as usize + len;
    let mut line = start;
    while line < end {
        clwb(line as *const u8);
        line += CACHE_LINE;
    }
    if fence {
        sfence();
    }
}

/// Flush the object referenced by `ptr` (all cache lines it spans) and optionally fence.
#[inline]
pub fn persist_obj<T>(ptr: *const T, fence: bool) {
    persist_range(ptr.cast::<u8>(), std::mem::size_of::<T>(), fence);
}

/// Number of cache lines spanned by `[addr, addr + len)`. Exposed for tests and for
/// allocators that want to pre-account flush costs.
#[must_use]
pub fn lines_spanned(addr: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let first = line_of(addr);
    let last = line_of(addr + len - 1);
    (last - first) / CACHE_LINE + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_spanned_counts_correctly() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 64), 1);
        assert_eq!(lines_spanned(0, 65), 2);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(100, 200), lines_spanned(100 % 64, 200));
    }

    #[test]
    fn persist_range_counts_one_clwb_per_line() {
        let buf = vec![0u8; 4096];
        let before = stats::snapshot_local();
        persist_range(buf.as_ptr(), 256, true);
        let d = stats::snapshot_local().since(&before);
        let expected = lines_spanned(buf.as_ptr() as usize, 256) as u64;
        assert_eq!(d.clwb, expected);
        assert_eq!(d.fence, 1);
    }

    #[test]
    fn persist_obj_flushes_whole_object() {
        #[repr(align(64))]
        struct Big {
            _bytes: [u8; 192],
        }
        let b = Big { _bytes: [0; 192] };
        let before = stats::snapshot_local();
        persist_obj(&b, false);
        let d = stats::snapshot_local().since(&before);
        assert_eq!(d.clwb, 3);
        assert_eq!(d.fence, 0);
    }

    #[test]
    fn zero_len_persist_only_fences_when_asked() {
        let x = 0u8;
        let before = stats::snapshot_local();
        persist_range(&x, 0, false);
        persist_range(&x, 0, true);
        let d = stats::snapshot_local().since(&before);
        assert_eq!(d.clwb, 0);
        assert_eq!(d.fence, 1);
    }
}
