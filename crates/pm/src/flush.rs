//! Cache-line flush and fence primitives for the simulated PM.
//!
//! On real hardware the RECIPE conversion inserts `clwb` (cache-line write-back) and
//! `sfence`/`mfence` instructions after stores to persistent memory. In this
//! reproduction every flush and fence goes through this module so that:
//!
//! 1. the paper's per-operation instruction counters can be collected ([`crate::stats`]),
//! 2. a configurable synthetic latency can be charged per flush/fence, letting the
//!    benchmark harness reproduce the paper's throughput *shape* (flush-heavy indexes
//!    lose) without Optane hardware, and
//! 3. the durability [`crate::tracker`] observes which cache lines became durable,
//!    implementing the §5 durability test.
//!
//! These functions take raw addresses but never dereference them; they are safe to
//! call with any pointer value.

use crate::{latency, line_of, stats, tracker, CACHE_LINE};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Nesting depth of active [`FenceCoalesce`] guards on this thread.
    static COALESCE_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Whether a fence was requested (and elided) inside the current region.
    static FENCE_PENDING: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide count of fences elided by coalescing regions.
static ELIDED_FENCES: AtomicU64 = AtomicU64::new(0);

/// Total fences elided by [`coalesce_fences`] regions since process start.
///
/// The batching evidence for the service layer: at the same op count, a batched
/// shard worker shows this counter climbing while `stats` fence counts stay flat.
#[must_use]
pub fn elided_fences() -> u64 {
    ELIDED_FENCES.load(Ordering::Relaxed)
}

/// RAII guard for a fence-coalescing region; see [`coalesce_fences`].
#[must_use = "fences are only coalesced while the guard is alive"]
pub struct FenceCoalesce {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a fence-coalescing region on the calling thread.
///
/// While the returned guard is alive, [`sfence`] calls on this thread are
/// *elided*: they only mark the region dirty (and bump [`elided_fences`]).
/// When the outermost guard drops, a single real fence is issued iff any fence
/// was requested inside the region. This is the group-commit primitive the
/// service shard workers use to amortize one fence epoch across a whole
/// request batch: per-op `clwb`s still dedup per line via [`latency`], and the
/// batch's single closing fence makes them all durable at once.
///
/// Regions nest; only the outermost drop fences. If the thread unwinds (a
/// simulated crash site fired mid-batch), the pending fence is *dropped*, not
/// issued — a real power failure would lose posted-but-unfenced write-backs,
/// and the durability [`crate::tracker`] must observe exactly that.
pub fn coalesce_fences() -> FenceCoalesce {
    COALESCE_DEPTH.with(|d| d.set(d.get() + 1));
    FenceCoalesce { _not_send: std::marker::PhantomData }
}

impl Drop for FenceCoalesce {
    fn drop(&mut self) {
        let depth = COALESCE_DEPTH.with(|d| {
            let v = d.get() - 1;
            d.set(v);
            v
        });
        if depth == 0 && FENCE_PENDING.with(|p| p.replace(false)) && !std::thread::panicking() {
            sfence();
        }
    }
}

/// Write back (flush) the cache line containing `addr`.
///
/// Equivalent to the `clwb` instruction in the paper's conversion actions: the line is
/// queued for write-back to the persistence domain but only becomes durable once a
/// subsequent [`sfence`] completes. Counted by [`crate::stats`], observed by the
/// durability [`crate::tracker`], and priced by the installed [`latency::Model`]
/// (first flush of a line per fence epoch; repeats coalesce).
#[inline]
pub fn clwb(addr: *const u8) {
    let line = line_of(addr as usize);
    stats::count_clwb();
    tracker::on_flush(line);
    latency::on_clwb(line);
}

/// Store fence: all previously issued [`clwb`]s become durable.
///
/// Equivalent to `sfence`/`mfence` ordering in the paper. Closes the calling
/// thread's flush-coalescing epoch in the [`latency`] model.
#[inline]
pub fn sfence() {
    if COALESCE_DEPTH.with(Cell::get) > 0 {
        FENCE_PENDING.with(|p| p.set(true));
        ELIDED_FENCES.fetch_add(1, Ordering::Relaxed);
        return;
    }
    stats::count_fence();
    tracker::on_fence();
    latency::on_fence();
}

/// Flush every cache line overlapping `[addr, addr + len)` and optionally fence.
///
/// This is the workhorse used by the `Pmem` persistence policy: the RECIPE conversion
/// action "insert cache line flush and memory fence instructions after each store".
#[inline]
pub fn persist_range(addr: *const u8, len: usize, fence: bool) {
    if len == 0 {
        if fence {
            sfence();
        }
        return;
    }
    let start = line_of(addr as usize);
    let end = addr as usize + len;
    let mut line = start;
    while line < end {
        clwb(line as *const u8);
        line += CACHE_LINE;
    }
    if fence {
        sfence();
    }
}

/// Flush the object referenced by `ptr` (all cache lines it spans) and optionally fence.
#[inline]
pub fn persist_obj<T>(ptr: *const T, fence: bool) {
    persist_range(ptr.cast::<u8>(), std::mem::size_of::<T>(), fence);
}

/// Number of cache lines spanned by `[addr, addr + len)`. Exposed for tests and for
/// allocators that want to pre-account flush costs.
#[must_use]
pub fn lines_spanned(addr: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let first = line_of(addr);
    let last = line_of(addr + len - 1);
    (last - first) / CACHE_LINE + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_spanned_counts_correctly() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 64), 1);
        assert_eq!(lines_spanned(0, 65), 2);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(100, 200), lines_spanned(100 % 64, 200));
    }

    #[test]
    fn persist_range_counts_one_clwb_per_line() {
        let buf = vec![0u8; 4096];
        let before = stats::snapshot_local();
        persist_range(buf.as_ptr(), 256, true);
        let d = stats::snapshot_local().since(&before);
        let expected = lines_spanned(buf.as_ptr() as usize, 256) as u64;
        assert_eq!(d.clwb, expected);
        assert_eq!(d.fence, 1);
    }

    #[test]
    fn persist_obj_flushes_whole_object() {
        #[repr(align(64))]
        struct Big {
            _bytes: [u8; 192],
        }
        let b = Big { _bytes: [0; 192] };
        let before = stats::snapshot_local();
        persist_obj(&b, false);
        let d = stats::snapshot_local().since(&before);
        assert_eq!(d.clwb, 3);
        assert_eq!(d.fence, 0);
    }

    #[test]
    fn coalesced_region_issues_one_fence() {
        let x = 0u8;
        let before = stats::snapshot_local();
        let elided_before = elided_fences();
        {
            let _g = coalesce_fences();
            for _ in 0..8 {
                persist_range(&x, 1, true);
            }
            let mid = stats::snapshot_local().since(&before);
            assert_eq!(mid.fence, 0, "fences inside the region must be elided");
        }
        let d = stats::snapshot_local().since(&before);
        assert_eq!(d.fence, 1, "outermost drop issues exactly one fence");
        // Global counter; other test threads may also elide concurrently.
        assert!(elided_fences() - elided_before >= 8);
    }

    #[test]
    fn nested_regions_fence_once_at_outermost_drop() {
        let x = 0u8;
        let before = stats::snapshot_local();
        {
            let _outer = coalesce_fences();
            {
                let _inner = coalesce_fences();
                sfence();
                persist_range(&x, 1, true);
            }
            // Inner drop must not fence while the outer region is alive.
            assert_eq!(stats::snapshot_local().since(&before).fence, 0);
        }
        assert_eq!(stats::snapshot_local().since(&before).fence, 1);
    }

    #[test]
    fn clean_region_drops_without_fencing() {
        let before = stats::snapshot_local();
        {
            let _g = coalesce_fences();
        }
        assert_eq!(stats::snapshot_local().since(&before).fence, 0);
    }

    #[test]
    fn unwinding_region_drops_pending_fence() {
        let before = stats::snapshot_local();
        let _ = std::panic::catch_unwind(|| {
            let _g = coalesce_fences();
            sfence();
            std::panic::panic_any("simulated crash");
        });
        let d = stats::snapshot_local().since(&before);
        assert_eq!(d.fence, 0, "a crash mid-batch must not retroactively fence");
        // The thread-local depth must be restored so later fences are real.
        sfence();
        assert_eq!(stats::snapshot_local().since(&before).fence, 1);
    }

    #[test]
    fn zero_len_persist_only_fences_when_asked() {
        let x = 0u8;
        let before = stats::snapshot_local();
        persist_range(&x, 0, false);
        persist_range(&x, 0, true);
        let d = stats::snapshot_local().since(&before);
        assert_eq!(d.clwb, 0);
        assert_eq!(d.fence, 1);
    }
}
