//! Persistent-memory allocation helpers.
//!
//! RECIPE assumes a persistent-memory allocator with garbage collection: a crash in the
//! middle of an update may leave a freshly allocated object unreachable, and the
//! allocator is expected to reclaim it eventually (§4.2). The paper's evaluation uses
//! PMDK's `libvmmalloc`, which transparently redirects `malloc`/`new` to a PM pool.
//!
//! This module provides the equivalent for the simulation:
//!
//! * [`pm_box`] allocates an object on the (heap-backed) PM pool, registers the
//!   allocation with the durability [`crate::tracker`], and marks all of its cache
//!   lines dirty — a newly constructed node must be flushed before it is linked into
//!   the index, and the durability test catches indexes that forget to do so (this is
//!   exactly the class of bug the paper found in FAST & FAIR and CCEH root
//!   allocation).
//! * Reclamation is *deferred to the end of the run*: objects unlinked from an index
//!   are leaked rather than freed, which is the simplest sound realisation of the
//!   garbage-collection assumption (no ABA, no use-after-free for non-blocking
//!   readers). Indexes that own their whole structure may free it in `Drop` via
//!   [`pm_drop`].
//!
//! Allocation counters are exposed so tests can assert that structure-modification
//! operations allocate the expected number of nodes.

use crate::tracker;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATED_OBJECTS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Allocate `val` on the simulated PM pool and return a raw pointer to it.
///
/// The object is registered with the durability tracker and all of its cache lines are
/// marked dirty: callers must persist it (flush + fence) before publishing a pointer
/// to it, or the §5 durability check will flag the lines as unflushed.
///
/// The returned pointer is never freed by this crate; see the module documentation for
/// the reclamation model. Convert back with `Box::from_raw` only if you can prove no
/// other thread can still reach the object.
pub fn pm_box<T>(val: T) -> *mut T {
    let p = Box::into_raw(Box::new(val));
    let size = std::mem::size_of::<T>();
    ALLOCATED_OBJECTS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    if tracker::enabled() {
        tracker::on_alloc(p as usize, size);
        tracker::on_store(p as usize, size);
    }
    p
}

/// Free an object previously allocated with [`pm_box`].
///
/// # Safety
///
/// `p` must have been returned by [`pm_box`], must not have been freed before, and no
/// other thread may hold a reference to it (typically only safe from a `Drop`
/// implementation that owns the entire structure).
pub unsafe fn pm_drop<T>(p: *mut T) {
    if p.is_null() {
        return;
    }
    // SAFETY: contract delegated to the caller.
    drop(unsafe { Box::from_raw(p) });
}

/// Number of objects allocated through [`pm_box`] since process start.
pub fn allocated_objects() -> u64 {
    ALLOCATED_OBJECTS.load(Ordering::Relaxed)
}

/// Number of bytes allocated through [`pm_box`] since process start.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_box_allocates_and_counts() {
        let before = allocated_objects();
        let p = pm_box(42u64);
        assert!(!p.is_null());
        // SAFETY: freshly allocated, no other references exist.
        unsafe {
            assert_eq!(*p, 42);
            pm_drop(p);
        }
        assert_eq!(allocated_objects(), before + 1);
    }

    #[test]
    fn pm_box_marks_lines_dirty_when_tracking() {
        tracker::enable();
        let p = pm_box([0u8; 256]);
        let report = tracker::check(false);
        assert!(!report.is_durable(), "fresh allocation must appear dirty");
        assert!(report.allocations >= 1);
        // Flushing the object and fencing makes it durable.
        crate::flush::persist_obj(p, true);
        assert!(tracker::check(false).is_durable());
        tracker::disable();
        // SAFETY: freshly allocated, no other references exist.
        unsafe { pm_drop(p) };
    }

    #[test]
    fn pm_drop_handles_null() {
        // SAFETY: null is explicitly allowed.
        unsafe { pm_drop::<u64>(std::ptr::null_mut()) };
    }
}
