//! Durability tracker: the reproduction of the paper's PIN-based durability test (§5).
//!
//! The paper traces all allocations (`malloc`, `posix_memalign`, `new`), all stores to
//! the allocated regions, and all cache-line flushes, then verifies that *every dirtied
//! cache line is flushed to PM*. Without binary instrumentation we achieve the same
//! check by having the PM-mode persistence policy report stores ([`on_store`]) and
//! allocations ([`on_alloc`]), and the flush primitives report write-backs
//! ([`on_flush`]) and fences ([`on_fence`]).
//!
//! Cache-line state machine:
//!
//! ```text
//!            on_store              on_flush              on_fence
//!  (clean) ───────────▶  dirty  ───────────▶  pending  ───────────▶ durable (clean)
//! ```
//!
//! A durability check ([`check`]) fails if any tracked line is still `dirty` — i.e. a
//! store was never followed by a flush — or, when `strict` is requested, if a line is
//! still `pending` (flushed but never fenced).
//!
//! Tracking is globally disabled by default (a single relaxed atomic load on the fast
//! path) so benchmarks pay nothing for it.

use crate::line_of;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

struct State {
    /// Tracked allocation ranges: start → length.
    allocs: BTreeMap<usize, usize>,
    /// Lines with stores not yet flushed.
    dirty: HashSet<usize>,
    /// Lines flushed but not yet made durable by a fence.
    pending: HashSet<usize>,
}

static STATE: Mutex<Option<State>> = Mutex::new(None);

/// Result of a durability [`check`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityReport {
    /// Cache lines that were dirtied by a store but never flushed.
    pub unflushed: Vec<usize>,
    /// Cache lines that were flushed but never covered by a fence.
    pub unfenced: Vec<usize>,
    /// Number of allocations registered while tracking was enabled.
    pub allocations: usize,
}

impl DurabilityReport {
    /// True when every dirtied line was flushed (and, if `strict` was used, fenced).
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.unflushed.is_empty() && self.unfenced.is_empty()
    }
}

/// Enable tracking and clear any previous state.
pub fn enable() {
    let mut g = STATE.lock();
    *g = Some(State { allocs: BTreeMap::new(), dirty: HashSet::new(), pending: HashSet::new() });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disable tracking and drop all state.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    *STATE.lock() = None;
}

/// Whether tracking is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record an allocation of `len` bytes at `addr` (called by [`crate::alloc`]).
pub fn on_alloc(addr: usize, len: usize) {
    if !enabled() {
        return;
    }
    if let Some(s) = STATE.lock().as_mut() {
        s.allocs.insert(addr, len);
    }
}

/// Record a store of `len` bytes at `addr`: the overlapped cache lines become dirty.
pub fn on_store(addr: usize, len: usize) {
    if !enabled() || len == 0 {
        return;
    }
    if let Some(s) = STATE.lock().as_mut() {
        let mut line = line_of(addr);
        let end = addr + len;
        while line < end {
            s.pending.remove(&line);
            s.dirty.insert(line);
            line += crate::CACHE_LINE;
        }
    }
}

/// Record a cache-line write-back of the line starting at `line_addr`.
pub fn on_flush(line_addr: usize) {
    if !enabled() {
        return;
    }
    if let Some(s) = STATE.lock().as_mut() {
        if s.dirty.remove(&line_addr) {
            s.pending.insert(line_addr);
        }
    }
}

/// Record a store fence: all pending lines become durable.
pub fn on_fence() {
    if !enabled() {
        return;
    }
    if let Some(s) = STATE.lock().as_mut() {
        s.pending.clear();
    }
}

/// Run the durability check. With `strict`, lines that were flushed but not yet fenced
/// are also reported (the paper's conversions always end an operation with a fence).
pub fn check(strict: bool) -> DurabilityReport {
    let g = STATE.lock();
    match g.as_ref() {
        None => DurabilityReport::default(),
        Some(s) => {
            let mut unflushed: Vec<usize> = s.dirty.iter().copied().collect();
            unflushed.sort_unstable();
            let mut unfenced: Vec<usize> =
                if strict { s.pending.iter().copied().collect() } else { Vec::new() };
            unfenced.sort_unstable();
            DurabilityReport { unflushed, unfenced, allocations: s.allocs.len() }
        }
    }
}

/// Forget all dirty/pending state but keep tracking enabled. Used between the load
/// phase and the test phase of the durability test.
pub fn clear_lines() {
    if let Some(s) = STATE.lock().as_mut() {
        s.dirty.clear();
        s.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracker is global; serialize the tests that use it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn store_flush_fence_cycle_is_durable() {
        let _g = TEST_LOCK.lock();
        enable();
        on_alloc(0x1000, 128);
        on_store(0x1000, 16);
        on_flush(line_of(0x1000));
        on_fence();
        let r = check(true);
        assert!(r.is_durable(), "{r:?}");
        assert_eq!(r.allocations, 1);
        disable();
    }

    #[test]
    fn missing_flush_is_reported() {
        let _g = TEST_LOCK.lock();
        enable();
        on_store(0x2000, 8);
        on_store(0x2040, 8);
        on_flush(0x2000);
        on_fence();
        let r = check(false);
        assert_eq!(r.unflushed, vec![0x2040]);
        assert!(!r.is_durable());
        disable();
    }

    #[test]
    fn missing_fence_reported_only_in_strict_mode() {
        let _g = TEST_LOCK.lock();
        enable();
        on_store(0x3000, 8);
        on_flush(0x3000);
        assert!(check(false).is_durable());
        assert!(!check(true).is_durable());
        disable();
    }

    #[test]
    fn store_after_flush_re_dirties_the_line() {
        let _g = TEST_LOCK.lock();
        enable();
        on_store(0x4000, 8);
        on_flush(0x4000);
        on_store(0x4000, 8);
        on_fence();
        let r = check(false);
        assert_eq!(r.unflushed, vec![0x4000]);
        disable();
    }

    #[test]
    fn disabled_tracker_reports_nothing() {
        let _g = TEST_LOCK.lock();
        disable();
        on_store(0x5000, 8);
        assert!(check(true).is_durable());
    }
}
