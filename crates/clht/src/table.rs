//! The bucket array ("hash table instance") behind a CLHT.
//!
//! Rehashing in CLHT is copy-on-write: a new, larger [`Table`] is populated from the
//! old one and then installed with a single atomic pointer swap (the Condition #1
//! commit point for the SMO). Old tables are never freed while the index lives — the
//! RECIPE garbage-collection assumption — so non-blocking readers that still hold the
//! old pointer stay correct.

use crate::bucket::{Bucket, EMPTY_KEY, ENTRIES_PER_BUCKET};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size power-of-two array of cache-line buckets.
pub struct Table {
    buckets: Box<[Bucket]>,
    mask: u64,
    /// Number of overflow buckets linked into this table (drives the resize policy).
    pub expansions: AtomicU64,
}

impl Table {
    /// Create a table with `num_buckets` (rounded up to a power of two, minimum 2).
    #[must_use]
    pub fn new(num_buckets: usize) -> Table {
        let n = num_buckets.next_power_of_two().max(2);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, Bucket::new);
        Table { buckets: v.into_boxed_slice(), mask: (n - 1) as u64, expansions: AtomicU64::new(0) }
    }

    /// Number of first-level buckets.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Approximate capacity in entries (first-level slots only).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buckets.len() * ENTRIES_PER_BUCKET
    }

    /// The first bucket of the chain for `hash`.
    #[must_use]
    pub fn bucket_for(&self, hash: u64) -> &Bucket {
        &self.buckets[(hash & self.mask) as usize]
    }

    /// All first-level buckets (used by rehashing and recovery walks).
    #[must_use]
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Insert into this (private, not yet published) table without any locking or
    /// persistence. Used while building the destination table of a rehash.
    pub fn insert_unsynchronized(&self, hash: u64, key: u64, value: u64) {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut bucket = self.bucket_for(hash);
        loop {
            for i in 0..ENTRIES_PER_BUCKET {
                if bucket.keys[i].load(Ordering::Relaxed) == EMPTY_KEY {
                    bucket.vals[i].store(value, Ordering::Relaxed);
                    bucket.keys[i].store(key, Ordering::Relaxed);
                    return;
                }
                if bucket.keys[i].load(Ordering::Relaxed) == key {
                    bucket.vals[i].store(value, Ordering::Relaxed);
                    return;
                }
            }
            let next = bucket.next_ptr();
            if next.is_null() {
                let nb = pm::alloc::pm_box(Bucket::with_entry(key, value));
                bucket.next.store(nb, Ordering::Relaxed);
                self.expansions.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // SAFETY: overflow buckets are allocated by this table and never freed
            // while it is alive.
            bucket = unsafe { &*next };
        }
    }

    /// Total number of occupied entries, walking every chain. O(n); test/diagnostic
    /// use only.
    #[must_use]
    pub fn len_slow(&self) -> usize {
        let mut count = 0;
        for b in self.buckets.iter() {
            let mut cur: *const Bucket = b;
            while !cur.is_null() {
                // SAFETY: chain pointers reference leaked (never freed) buckets.
                let r = unsafe { &*cur };
                count += r.entries().len();
                cur = r.next_ptr();
            }
        }
        count
    }

    /// Iterate over every `(key, value)` in the table, chains included.
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for b in self.buckets.iter() {
            let mut cur: *const Bucket = b;
            while !cur.is_null() {
                // SAFETY: see `len_slow`.
                let r = unsafe { &*cur };
                for (k, v) in r.entries() {
                    f(k, v);
                }
                cur = r.next_ptr();
            }
        }
    }
}

impl Drop for Table {
    fn drop(&mut self) {
        // Free the overflow chains this table owns. First-level buckets are dropped
        // with the boxed slice.
        for b in self.buckets.iter() {
            let mut cur = b.next_ptr();
            while !cur.is_null() {
                // SAFETY: overflow buckets were allocated with `pm_box` by this table
                // and are unreachable once the table is dropped.
                let next = unsafe { (*cur).next_ptr() };
                // SAFETY: as above — `cur` is a live pm_box allocation owned by this table.
                unsafe { pm::alloc::pm_drop(cur) };
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rounds_to_power_of_two() {
        assert_eq!(Table::new(0).num_buckets(), 2);
        assert_eq!(Table::new(3).num_buckets(), 4);
        assert_eq!(Table::new(16).num_buckets(), 16);
    }

    #[test]
    fn unsynchronized_insert_and_count() {
        let t = Table::new(4);
        for k in 1..=50u64 {
            t.insert_unsynchronized(recipe::key::hash_u64(k), k, k * 10);
        }
        assert_eq!(t.len_slow(), 50);
        let mut seen = std::collections::HashMap::new();
        t.for_each(|k, v| {
            seen.insert(k, v);
        });
        assert_eq!(seen.len(), 50);
        assert_eq!(seen[&7], 70);
    }

    #[test]
    fn unsynchronized_insert_overwrites_duplicates() {
        let t = Table::new(2);
        let h = recipe::key::hash_u64(5);
        t.insert_unsynchronized(h, 5, 1);
        t.insert_unsynchronized(h, 5, 2);
        assert_eq!(t.len_slow(), 1);
        let mut val = 0;
        t.for_each(|_, v| val = v);
        assert_eq!(val, 2);
    }

    #[test]
    fn overflow_chains_grow_and_are_freed_on_drop() {
        let t = Table::new(2);
        for k in 1..=100u64 {
            t.insert_unsynchronized(recipe::key::hash_u64(k), k, k);
        }
        assert!(t.expansions.load(Ordering::Relaxed) > 0);
        assert_eq!(t.len_slow(), 100);
        drop(t); // must not leak or double-free (exercised under the test allocator)
    }
}
