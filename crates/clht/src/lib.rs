//! # CLHT / P-CLHT — Cache-Line Hash Table and its RECIPE conversion (Condition #1)
//!
//! CLHT (David et al., ASPLOS '15) restricts every bucket to a single cache line so
//! that the common-case update touches one line. Readers are non-blocking and use
//! atomic key/value snapshots; writers lock the bucket they modify; rehashing is
//! copy-on-write and commits by atomically swapping the table pointer (§6.2 of the
//! RECIPE paper).
//!
//! Both inserts/deletes and the rehash SMO therefore become visible through a single
//! hardware-atomic store, so CLHT satisfies **Condition #1** and its conversion to
//! P-CLHT only inserts cache-line flushes and fences after the relevant stores — the
//! paper reports 30 modified LOC. In this crate the conversion is the set of
//! `P::persist_*`/`P::crash_site` calls in [`Clht`], and the two instantiations are:
//!
//! * [`DramClht`] — the original DRAM index (`Clht<Dram>`),
//! * [`PClht`] — the RECIPE-converted PM index (`Clht<Pmem>`).
//!
//! Keys longer than 8 bytes are not supported (the paper evaluates unordered indexes
//! with 8-byte integer keys only); such operations return `false`/`None`.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod bucket;
pub mod table;

use bucket::{Bucket, EMPTY_KEY, ENTRIES_PER_BUCKET};
use recipe::index::Recoverable;
use recipe::key::{hash_u64, key_to_u64};
use recipe::persist::{Dram, PersistMode, Pmem};
use recipe::session::{Capabilities, Index, OpError, OpResult};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, Ordering};
use table::Table;

/// Resize once the number of overflow buckets exceeds `num_buckets / EXPANSION_RATIO`.
const EXPANSION_RATIO: u64 = 4;

/// A concurrent cache-line hash table, generic over the persistence policy.
///
/// `Clht<Dram>` is the original in-memory CLHT-LB; `Clht<Pmem>` is P-CLHT, the
/// RECIPE-converted persistent index.
pub struct Clht<P: PersistMode = Dram> {
    table: AtomicPtr<Table>,
    resize_lock: parking_lot::Mutex<()>,
    _policy: PhantomData<P>,
}

/// The unconverted DRAM CLHT.
pub type DramClht = Clht<Dram>;
/// P-CLHT: the RECIPE-converted persistent CLHT.
pub type PClht = Clht<Pmem>;

/// Every crash site this crate can emit, for the §5 per-site exhaustive sweep.
pub const CRASH_SITES: &[&str] = &[
    "clht.insert.value_written",
    "clht.insert.committed",
    "clht.insert.overflow_allocated",
    "clht.remove.committed",
    "clht.rehash.table_built",
    "clht.rehash.committed",
];

// SAFETY: the raw table pointer is only mutated through atomic operations and the
// pointed-to tables are never freed while the index is alive (copy-on-write rehash
// with leaked old tables), so sharing across threads is sound.
unsafe impl<P: PersistMode> Send for Clht<P> {}
// SAFETY: as above — the table pointer is only mutated atomically and never freed.
unsafe impl<P: PersistMode> Sync for Clht<P> {}

impl<P: PersistMode> Clht<P> {
    /// Create a table with capacity for roughly `capacity` entries before the first
    /// rehash. The paper's evaluation starts from a 48 KB table.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity / ENTRIES_PER_BUCKET).max(2);
        let t = pm::alloc::pm_box(Table::new(buckets));
        // Persist the initial table (root object) before publishing it: this is the
        // durability bug the paper found in FAST & FAIR and CCEH root allocation.
        // SAFETY: freshly allocated, uniquely owned here.
        let tref = unsafe { &*t };
        P::persist_range(tref.buckets().as_ptr().cast(), tref.num_buckets() * 64, false);
        P::persist_obj(t, true);
        let this = Clht {
            table: AtomicPtr::new(t),
            resize_lock: parking_lot::Mutex::new(()),
            _policy: PhantomData,
        };
        P::persist_obj(&this.table, true);
        this
    }

    /// Default-sized table (the paper's 48 KB starting size ≈ 768 buckets).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(768 * ENTRIES_PER_BUCKET)
    }

    #[inline]
    fn current(&self) -> &Table {
        // SAFETY: tables are never freed while the index is alive.
        unsafe { &*self.table.load(Ordering::Acquire) }
    }

    /// Map an external byte-string key to CLHT's internal non-zero 8-byte key.
    /// Returns `None` for unsupported keys (longer than 8 bytes or all-0xFF).
    #[inline]
    fn internal_key(key: &[u8]) -> Option<u64> {
        if key.len() > 8 {
            return None;
        }
        let k = key_to_u64(key).wrapping_add(1);
        if k == EMPTY_KEY {
            None
        } else {
            Some(k)
        }
    }

    /// Number of entries (slow; walks every chain).
    #[must_use]
    pub fn len(&self) -> usize {
        self.current().len_slow()
    }

    /// Whether the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of first-level buckets in the currently installed table.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.current().num_buckets()
    }

    fn get_internal(&self, k: u64) -> Option<u64> {
        let h = hash_u64(k);
        loop {
            let tptr = self.table.load(Ordering::Acquire);
            // SAFETY: tables are never freed while the index is alive.
            let t = unsafe { &*tptr };
            let mut bucket: *const Bucket = t.bucket_for(h);
            while !bucket.is_null() {
                pm::stats::record_node_visit();
                // SAFETY: buckets are never freed while reachable from a live table.
                let b = unsafe { &*bucket };
                if let Some(v) = b.get_in_bucket(k) {
                    return Some(v);
                }
                bucket = b.next_ptr();
            }
            // The key may have raced with a rehash that installed a new table after we
            // loaded the pointer; re-check and retry once per swap.
            if self.table.load(Ordering::Acquire) == tptr {
                return None;
            }
        }
    }

    /// Insert or update. Returns `true` if the key was newly inserted.
    fn put_internal(&self, k: u64, value: u64) -> bool {
        let h = hash_u64(k);
        loop {
            let tptr = self.table.load(Ordering::Acquire);
            // SAFETY: tables are never freed while the index is alive.
            let t = unsafe { &*tptr };
            let first = t.bucket_for(h);
            let _guard = first.lock.lock();
            // A rehash may have swapped the table while we were waiting for the lock;
            // writers must operate on the current table.
            if self.table.load(Ordering::Acquire) != tptr {
                drop(_guard);
                continue;
            }
            pm::stats::record_node_visit();

            // Pass 1: look for the key or the first free slot along the chain.
            let mut cur: &Bucket = first;
            let mut free: Option<(&Bucket, usize)> = None;
            loop {
                if let Some(i) = cur.slot_of(k) {
                    // In-place value update: single 8-byte atomic store, then flush.
                    cur.vals[i].store(value, Ordering::Release);
                    P::mark_dirty_obj(&cur.vals[i]);
                    P::persist_obj(&cur.vals[i], true);
                    return false;
                }
                if free.is_none() {
                    if let Some(i) = cur.free_slot() {
                        free = Some((cur, i));
                    }
                }
                let next = cur.next_ptr();
                if next.is_null() {
                    break;
                }
                pm::stats::record_node_visit();
                // SAFETY: chain buckets are never freed while reachable.
                cur = unsafe { &*next };
            }

            if let Some((b, i)) = free {
                // CLHT's atomic commit: write the value first, make it reach PM no
                // later than the key (same cache line, so a single flush after the key
                // store persists both in order), then publish the key with one atomic
                // 8-byte store.
                b.vals[i].store(value, Ordering::Release);
                P::mark_dirty_obj(&b.vals[i]);
                P::crash_site("clht.insert.value_written");
                b.keys[i].store(k, Ordering::Release);
                P::mark_dirty_obj(&b.keys[i]);
                P::persist_range((b as *const Bucket).cast(), 64, true);
                P::crash_site("clht.insert.committed");
                return true;
            }

            // Chain is full: link a new overflow bucket (its single entry is the new
            // key), committing with one atomic pointer store.
            let nb = pm::alloc::pm_box(Bucket::with_entry(k, value));
            P::persist_range(nb.cast(), 64, true);
            P::crash_site("clht.insert.overflow_allocated");
            cur.next.store(nb, Ordering::Release);
            P::mark_dirty_obj(&cur.next);
            P::persist_obj(&cur.next, true);
            let expansions = t.expansions.fetch_add(1, Ordering::Relaxed) + 1;
            drop(_guard);
            if expansions * EXPANSION_RATIO > t.num_buckets() as u64 {
                self.rehash(tptr);
            }
            return true;
        }
    }

    /// Atomic conditional update: write the new value under the chain's bucket
    /// lock only if the key is already present; never inserts.
    fn update_internal(&self, k: u64, value: u64) -> bool {
        let h = hash_u64(k);
        loop {
            let tptr = self.table.load(Ordering::Acquire);
            // SAFETY: tables are never freed while the index is alive.
            let t = unsafe { &*tptr };
            let first = t.bucket_for(h);
            let _guard = first.lock.lock();
            // A rehash may have swapped the table while we were waiting for the lock.
            if self.table.load(Ordering::Acquire) != tptr {
                continue;
            }
            pm::stats::record_node_visit();
            let mut cur: &Bucket = first;
            loop {
                if let Some(i) = cur.slot_of(k) {
                    // Same single-atomic-store commit as the in-place insert path.
                    cur.vals[i].store(value, Ordering::Release);
                    P::mark_dirty_obj(&cur.vals[i]);
                    P::persist_obj(&cur.vals[i], true);
                    return true;
                }
                let next = cur.next_ptr();
                if next.is_null() {
                    return false;
                }
                pm::stats::record_node_visit();
                // SAFETY: chain buckets are never freed while reachable.
                cur = unsafe { &*next };
            }
        }
    }

    fn remove_internal(&self, k: u64) -> bool {
        let h = hash_u64(k);
        loop {
            let tptr = self.table.load(Ordering::Acquire);
            // SAFETY: tables are never freed while the index is alive.
            let t = unsafe { &*tptr };
            let first = t.bucket_for(h);
            let _guard = first.lock.lock();
            if self.table.load(Ordering::Acquire) != tptr {
                continue;
            }
            pm::stats::record_node_visit();
            let mut cur: &Bucket = first;
            loop {
                if let Some(i) = cur.slot_of(k) {
                    // Deletion commits by atomically storing EMPTY_KEY to the key slot.
                    cur.keys[i].store(EMPTY_KEY, Ordering::Release);
                    P::mark_dirty_obj(&cur.keys[i]);
                    P::persist_obj(&cur.keys[i], true);
                    P::crash_site("clht.remove.committed");
                    return true;
                }
                let next = cur.next_ptr();
                if next.is_null() {
                    return false;
                }
                // SAFETY: chain buckets are never freed while reachable.
                cur = unsafe { &*next };
            }
        }
    }

    /// Rehash into a table twice the size of `old`, committing with an atomic table
    /// pointer swap (the SMO's Condition #1 commit point).
    fn rehash(&self, old: *mut Table) {
        let _g = self.resize_lock.lock();
        if self.table.load(Ordering::Acquire) != old {
            return; // someone else already rehashed
        }
        // SAFETY: `old` is the currently installed table; never freed.
        let old_t = unsafe { &*old };

        // Block all writers: take every first-level bucket lock. Readers continue
        // non-blocking against the old table.
        let guards: Vec<_> = old_t.buckets().iter().map(|b| b.lock.lock()).collect();

        let new_t = pm::alloc::pm_box(Table::new(old_t.num_buckets() * 2));
        // SAFETY: freshly allocated, private until published below.
        let new_ref = unsafe { &*new_t };
        old_t.for_each(|k, v| {
            new_ref.insert_unsynchronized(hash_u64(k), k, v);
        });

        // Persist the entire new table before publishing it, including any overflow
        // buckets allocated while re-inserting the old entries.
        P::persist_range(new_ref.buckets().as_ptr().cast(), new_ref.num_buckets() * 64, false);
        for b in new_ref.buckets() {
            let mut cur = b.next_ptr();
            while !cur.is_null() {
                P::persist_range(cur.cast(), 64, false);
                // SAFETY: overflow buckets of the private new table are never freed.
                cur = unsafe { (*cur).next_ptr() };
            }
        }
        P::persist_obj(new_t, true);
        P::crash_site("clht.rehash.table_built");

        // Single atomic commit: swap the table pointer, then persist the pointer.
        self.table.store(new_t, Ordering::Release);
        P::mark_dirty_obj(&self.table);
        P::persist_obj(&self.table, true);
        P::crash_site("clht.rehash.committed");
        obs::event::emit(
            "clht.resize",
            "rehash_committed",
            old_t.num_buckets() as u64,
            new_ref.num_buckets() as u64,
        );

        drop(guards);
        // The old table is intentionally leaked: non-blocking readers may still hold
        // references to it (RECIPE's PM-allocator GC assumption).
        let _ = old;
    }
}

impl<P: PersistMode> Default for Clht<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: PersistMode> Drop for Clht<P> {
    fn drop(&mut self) {
        let t = self.table.load(Ordering::Relaxed);
        if !t.is_null() {
            // SAFETY: dropping the index; no other thread can access it anymore. Only
            // the currently installed table is freed (older tables from rehashes are
            // leaked by design).
            unsafe { pm::alloc::pm_drop(t) };
        }
    }
}

/// What this index supports. `linearizable_update` is `true`: the presence
/// check and the value store happen under the bucket lock.
pub const CAPS: Capabilities = Capabilities::hash_index(true);

impl<P: PersistMode> Index for Clht<P> {
    fn exec_insert(&self, key: &[u8], value: u64) -> Result<OpResult, OpError> {
        match Self::internal_key(key) {
            Some(k) => {
                if self.put_internal(k, value) {
                    Ok(OpResult::Inserted)
                } else {
                    Ok(OpResult::Updated)
                }
            }
            None => Err(OpError::UnsupportedKey),
        }
    }

    /// Atomic: presence check and value store happen under the bucket lock
    /// (overrides the non-atomic trait default).
    fn exec_update(&self, key: &[u8], value: u64) -> Result<OpResult, OpError> {
        match Self::internal_key(key) {
            Some(k) if self.update_internal(k, value) => Ok(OpResult::Updated),
            Some(_) => Err(OpError::NotFound),
            None => Err(OpError::UnsupportedKey),
        }
    }

    fn exec_get(&self, key: &[u8]) -> Option<u64> {
        Self::internal_key(key).and_then(|k| self.get_internal(k))
    }

    fn exec_remove(&self, key: &[u8]) -> Result<OpResult, OpError> {
        match Self::internal_key(key) {
            Some(k) if self.remove_internal(k) => Ok(OpResult::Removed),
            Some(_) => Err(OpError::NotFound),
            None => Err(OpError::UnsupportedKey),
        }
    }

    fn capabilities(&self) -> Capabilities {
        CAPS
    }

    fn index_name(&self) -> String {
        if P::PERSISTENT {
            "P-CLHT".into()
        } else {
            "CLHT".into()
        }
    }
}

impl<P: PersistMode> Recoverable for Clht<P> {
    fn recover(&self) {
        // RECIPE lock re-initialisation: clear every bucket lock of the installed
        // table. Values/keys need no repair — partially completed inserts left either
        // no visible key (value written, key not yet published) or a fully visible
        // entry, both of which the read/write paths handle.
        let t = self.current();
        for b in t.buckets() {
            let mut cur: *const Bucket = b;
            while !cur.is_null() {
                // SAFETY: buckets reachable from the installed table are never freed.
                let r = unsafe { &*cur };
                r.lock.force_unlock();
                cur = r.next_ptr();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe::index::ConcurrentIndex;
    use recipe::key::u64_key;
    use std::sync::Arc;

    fn k(x: u64) -> [u8; 8] {
        u64_key(x)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let m: DramClht = Clht::with_capacity(64);
        assert!(m.insert(&k(1), 10));
        assert!(m.insert(&k(2), 20));
        assert!(!m.insert(&k(1), 11), "duplicate insert updates");
        assert_eq!(m.get(&k(1)), Some(11));
        assert_eq!(m.get(&k(2)), Some(20));
        assert_eq!(m.get(&k(3)), None);
        assert!(m.remove(&k(1)));
        assert!(!m.remove(&k(1)));
        assert_eq!(m.get(&k(1)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn update_only_touches_existing() {
        let m: DramClht = Clht::with_capacity(64);
        assert!(!m.update(&k(5), 1));
        m.insert(&k(5), 1);
        assert!(m.update(&k(5), 2));
        assert_eq!(m.get(&k(5)), Some(2));
    }

    #[test]
    fn key_zero_is_supported_via_internal_offset() {
        let m: DramClht = Clht::with_capacity(16);
        assert!(m.insert(&k(0), 99));
        assert_eq!(m.get(&k(0)), Some(99));
    }

    #[test]
    fn unsupported_keys_are_rejected() {
        let m: DramClht = Clht::with_capacity(16);
        assert!(!m.insert(b"a-very-long-string-key", 1));
        assert_eq!(m.get(b"a-very-long-string-key"), None);
        // all-0xFF 8-byte key maps to the reserved sentinel
        assert!(!m.insert(&[0xFF; 8], 1));
    }

    #[test]
    fn rehash_emits_resize_event() {
        let was = obs::event::set_enabled(true);
        let m: DramClht = Clht::with_capacity(8);
        for i in 0..5_000u64 {
            assert!(m.insert(&k(i), i));
        }
        let dump = obs::event::drain();
        obs::event::set_enabled(was);
        let resizes: Vec<_> = dump.events.iter().filter(|e| e.kind == "clht.resize").collect();
        assert!(!resizes.is_empty(), "growing 8 -> 5000 keys must rehash at least once");
        for ev in resizes {
            assert_eq!(ev.detail, "rehash_committed");
            assert_eq!(ev.b, ev.a * 2, "each rehash doubles the table");
        }
    }

    #[test]
    fn grows_via_rehash_and_keeps_all_keys() {
        let m: DramClht = Clht::with_capacity(8);
        let before = m.num_buckets();
        for i in 0..5_000u64 {
            assert!(m.insert(&k(i), i * 2));
        }
        assert!(m.num_buckets() > before, "rehash should have grown the table");
        for i in 0..5_000u64 {
            assert_eq!(m.get(&k(i)), Some(i * 2), "key {i} lost after rehash");
        }
        assert_eq!(m.len(), 5_000);
    }

    #[test]
    fn pclht_counts_flushes_per_insert() {
        let m: PClht = Clht::with_capacity(1 << 14);
        // Warm up (skip table-creation flushes).
        let before = pm::stats::snapshot_local();
        for i in 1..=1000u64 {
            m.insert(&k(i), i);
        }
        let d = pm::stats::snapshot_local().since(&before);
        let per_insert = d.clwb as f64 / 1000.0;
        // Common-case P-CLHT insert touches a single cache line (paper Table 4: ~1.5
        // clwb per insert including rehashing; with no rehash we expect ~1).
        assert!(per_insert < 2.0, "expected ~1 clwb per insert, got {per_insert}");
        assert!(d.fence > 0);
    }

    #[test]
    fn dram_clht_issues_no_flushes() {
        let m: DramClht = Clht::with_capacity(256);
        let before = pm::stats::snapshot_local();
        for i in 1..=100u64 {
            m.insert(&k(i), i);
        }
        let d = pm::stats::snapshot_local().since(&before);
        assert_eq!(d.clwb, 0);
        assert_eq!(d.fence, 0);
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let m: Arc<PClht> = Arc::new(Clht::with_capacity(128));
        let threads = 8;
        let per_thread = 2_000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let key = t as u64 * per_thread + i;
                    assert!(m.insert(&k(key), key + 1));
                    assert_eq!(m.get(&k(key)), Some(key + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for key in 0..threads as u64 * per_thread {
            assert_eq!(m.get(&k(key)), Some(key + 1), "key {key} lost");
        }
        assert_eq!(m.len(), (threads as u64 * per_thread) as usize);
    }

    #[test]
    fn recover_clears_stuck_locks() {
        let m: PClht = Clht::with_capacity(16);
        m.insert(&k(1), 1);
        // Simulate a crash that left a bucket lock set.
        let t = m.current();
        std::mem::forget(t.buckets()[0].lock.lock());
        m.recover();
        for b in m.current().buckets() {
            assert!(!b.lock.is_locked());
        }
        // Index still usable.
        assert!(m.insert(&k(2), 2));
    }

    #[test]
    fn name_reflects_policy() {
        assert_eq!(Clht::<Dram>::with_capacity(4).name(), "CLHT");
        assert_eq!(Clht::<Pmem>::with_capacity(4).name(), "P-CLHT");
    }
}
