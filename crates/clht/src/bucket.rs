//! Cache-line-sized buckets for CLHT.
//!
//! CLHT restricts each bucket to one cache line (64 bytes): a lock word, three
//! key-value pairs of 8 bytes each, and a pointer to an overflow bucket (§6.2). The
//! layout is what makes the common-case update touch (and, in the PM conversion,
//! flush) exactly one cache line.

use recipe::lock::VersionLock;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// Number of key-value pairs per bucket.
pub const ENTRIES_PER_BUCKET: usize = 3;

/// Sentinel stored in a key slot that holds no entry.
pub const EMPTY_KEY: u64 = 0;

/// A 64-byte CLHT bucket: lock, three key slots, three value slots, overflow pointer.
#[repr(C, align(64))]
pub struct Bucket {
    /// Per-bucket write lock (only the first bucket of a chain is ever locked).
    pub lock: VersionLock,
    /// Key slots; [`EMPTY_KEY`] means the slot is free.
    pub keys: [AtomicU64; ENTRIES_PER_BUCKET],
    /// Value slots, valid only when the corresponding key slot is non-empty.
    pub vals: [AtomicU64; ENTRIES_PER_BUCKET],
    /// Overflow chain pointer (null when the chain ends here).
    pub next: AtomicPtr<Bucket>,
}

impl Default for Bucket {
    fn default() -> Self {
        Self::new()
    }
}

impl Bucket {
    /// Create an empty bucket.
    #[must_use]
    pub fn new() -> Self {
        Bucket {
            lock: VersionLock::new(),
            keys: Default::default(),
            vals: Default::default(),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Create a bucket pre-populated with one entry (used when growing a chain).
    #[must_use]
    pub fn with_entry(key: u64, value: u64) -> Self {
        let b = Bucket::new();
        b.vals[0].store(value, Ordering::Relaxed);
        b.keys[0].store(key, Ordering::Relaxed);
        b
    }

    /// Atomic-snapshot read of `key` within this single bucket (not the chain).
    ///
    /// CLHT's non-blocking readers rely on the ordering "value is written before the
    /// key becomes visible": read key, read value, re-read key; if the key is stable
    /// the value belongs to it.
    pub fn get_in_bucket(&self, key: u64) -> Option<u64> {
        for i in 0..ENTRIES_PER_BUCKET {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == key {
                let v = self.vals[i].load(Ordering::Acquire);
                if self.keys[i].load(Ordering::Acquire) == key {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Index of the first empty slot, if any.
    pub fn free_slot(&self) -> Option<usize> {
        (0..ENTRIES_PER_BUCKET).find(|&i| self.keys[i].load(Ordering::Acquire) == EMPTY_KEY)
    }

    /// Index of the slot currently holding `key`, if any.
    pub fn slot_of(&self, key: u64) -> Option<usize> {
        (0..ENTRIES_PER_BUCKET).find(|&i| self.keys[i].load(Ordering::Acquire) == key)
    }

    /// Iterate over the occupied `(key, value)` pairs of this bucket.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(ENTRIES_PER_BUCKET);
        for i in 0..ENTRIES_PER_BUCKET {
            let k = self.keys[i].load(Ordering::Acquire);
            if k != EMPTY_KEY {
                out.push((k, self.vals[i].load(Ordering::Acquire)));
            }
        }
        out
    }

    /// Pointer to the next overflow bucket in the chain, if any.
    pub fn next_ptr(&self) -> *mut Bucket {
        self.next.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Bucket>(), 64);
        assert_eq!(std::mem::align_of::<Bucket>(), 64);
    }

    #[test]
    fn snapshot_read_finds_inserted_entry() {
        let b = Bucket::new();
        assert_eq!(b.get_in_bucket(42), None);
        b.vals[1].store(100, Ordering::Release);
        b.keys[1].store(42, Ordering::Release);
        assert_eq!(b.get_in_bucket(42), Some(100));
        assert_eq!(b.slot_of(42), Some(1));
    }

    #[test]
    fn free_slot_scans_in_order() {
        let b = Bucket::new();
        assert_eq!(b.free_slot(), Some(0));
        b.keys[0].store(1, Ordering::Release);
        assert_eq!(b.free_slot(), Some(1));
        b.keys[1].store(2, Ordering::Release);
        b.keys[2].store(3, Ordering::Release);
        assert_eq!(b.free_slot(), None);
    }

    #[test]
    fn with_entry_prepopulates_slot_zero() {
        let b = Bucket::with_entry(9, 90);
        assert_eq!(b.get_in_bucket(9), Some(90));
        assert_eq!(b.entries(), vec![(9, 90)]);
    }
}
