//! Disabled-mode zero-allocation assertion: `obs::event::emit` with tracing
//! off must not allocate (it is called from every SMO hot path and every
//! crash-site check, unconditionally).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the GlobalAlloc
// contract; the added counter has no effect on returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `Self::alloc`, i.e. by `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as `System::realloc`; ptr originates from it.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed across `f`, minimised over a few attempts. The
/// counter is process-global, so a libtest harness thread scheduled into the
/// measured window (rare, but real under full-suite load on a small host)
/// can contribute unrelated allocations; a genuine per-emit allocation would
/// show up ~10 000 times in *every* attempt, so "any attempt is clean" is
/// the property that separates the two.
fn min_allocs_during(mut f: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        f();
        min = min.min(ALLOCS.load(Ordering::Relaxed) - before);
        if min == 0 {
            break;
        }
    }
    min
}

// One test function, not two: both phases toggle the global enabled flag,
// so they must run sequentially.
#[test]
fn emit_allocates_nothing_disabled_and_in_enabled_steady_state() {
    // Phase 1: disabled (the default) — emit must be allocation-free.
    assert!(!obs::event::enabled(), "tracing must default to off");
    obs::event::emit("warm", "warm", 0, 0);
    let disabled = min_allocs_during(|| {
        for i in 0..10_000u64 {
            obs::event::emit("hot.kind", "hot.detail", i, i * 2);
            let _ = obs::event::enabled();
        }
    });
    assert_eq!(disabled, 0, "disabled emit must be allocation-free");

    // Phase 2: enabled steady state — after the first emit registers this
    // thread's fixed-capacity ring, further emits must reuse it.
    let was = obs::event::set_enabled(true);
    obs::event::emit("warm", "warm", 0, 0);
    let enabled = min_allocs_during(|| {
        for i in 0..10_000u64 {
            obs::event::emit("hot.kind", "hot.detail", i, 0);
        }
    });
    obs::event::set_enabled(was);
    obs::event::clear();
    assert_eq!(enabled, 0, "steady-state enabled emit must reuse the ring");
}
