//! Unified observability for the RECIPE workspace.
//!
//! Four pieces, one crate, zero external dependencies beyond `parking_lot`:
//!
//! * [`hist`] — mergeable log-bucketed HDR-style histograms ([`Hist`]) with
//!   bounded relative quantile error. The YCSB drivers keep one per thread
//!   (wall-ns and charged-ns), record **every** operation, and merge at
//!   phase end, replacing the old biased every-8th-op sampling.
//! * [`registry`] — named [`Counter`]/[`Gauge`]/[`Histogram`] handles plus
//!   keyed collector closures, unified behind a single [`snapshot`] that
//!   exports self-describing JSON (`recipe-obs-metrics/v1`) or CSV. The `pm`
//!   substrate registers a collector for its probe/flush/charged counters;
//!   the bench layer pushes per-cell latency histograms and epoch gauges.
//! * [`stream`] — a [`SnapshotStream`] capturing periodic schema-valid
//!   snapshots *during* a run (wall-interval or op-count triggered), so
//!   transitional regimes — a live shard migration, an overload onset — show
//!   up as a timeline instead of vanishing into end-of-run totals.
//! * [`event`] — an opt-in structured event ring (per-thread bounded
//!   buffers, global sequencing) tracing SMO steps, epoch advances, and
//!   crash-site hits; the crash harness dumps the timeline of a failing
//!   state. Disabled (the default), emitting costs one relaxed atomic load
//!   and allocates nothing.
//!
//! ```
//! // Metrics: named handles, one snapshot, self-describing export.
//! obs::counter("demo.ops").add(10);
//! let lat = obs::histogram("demo.lat_ns");
//! let mut local = obs::Hist::new(); // per-thread, lock-free
//! local.record(250);
//! local.record(4_000);
//! lat.merge_from(&local);
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter_value("demo.ops"), Some(10));
//! assert_eq!(snap.hist("demo.lat_ns").unwrap().count(), 2);
//! let json = snap.to_json();
//! assert!(obs::json::parse(&json).is_ok());
//! ```
//!
//! ```
//! // Events: opt-in, globally ordered, drained on demand.
//! let was = obs::event::set_enabled(true);
//! obs::event::clear();
//! obs::event::emit("smo.split", "leaf", 42, 0);
//! let dump = obs::event::drain();
//! obs::event::set_enabled(was);
//! assert_eq!(dump.events[0].detail, "leaf");
//! ```

pub mod event;
pub mod hist;
pub mod json;
pub mod registry;
pub mod stream;

pub use hist::Hist;
pub use registry::{
    counter, gauge, histogram, register_collector, snapshot, Counter, Gauge, Histogram, Sample,
    Snapshot, Value, SCHEMA,
};
pub use stream::{SnapshotStream, StreamConfig, StreamedSnapshot};
