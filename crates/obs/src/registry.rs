//! Global metric registry: named [`Counter`]/[`Gauge`]/[`Histogram`] handles
//! plus keyed collector closures, snapshotted into a self-describing
//! JSON/CSV export.
//!
//! Handles are cheap `Arc` clones over atomics (counters/gauges) or a mutex
//! (histograms); creating the same name twice returns the same underlying
//! instrument. Collectors bridge pre-existing telemetry (e.g. the `pm`
//! crate's global counters) into the snapshot without copying them into
//! registry storage on every update: they run at [`snapshot`] time and are
//! keyed so re-registration is idempotent.
//!
//! ```
//! obs::counter("doc.requests").add(3);
//! obs::gauge("doc.temperature").set(21.5);
//! obs::histogram("doc.latency_ns").record(1200);
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter_value("doc.requests"), Some(3));
//! assert!(snap.to_json().contains("\"doc.requests\""));
//! ```

use crate::hist::Hist;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Schema identifier stamped into every JSON export.
pub const SCHEMA: &str = "recipe-obs-metrics/v1";

/// Monotonic counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle (stores `f64` bits atomically).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram handle; per-thread [`Hist`]s are merged in via
/// [`Histogram::merge_from`] rather than locking per record.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<Hist>>);

impl Histogram {
    /// Record one observation directly (locks; prefer thread-local `Hist` +
    /// `merge_from` on hot paths).
    pub fn record(&self, v: u64) {
        self.0.lock().record(v);
    }

    /// Merge a locally-accumulated histogram into the shared one.
    pub fn merge_from(&self, h: &Hist) {
        self.0.lock().merge(h);
    }

    /// Replace the shared histogram's contents.
    pub fn set(&self, h: Hist) {
        *self.0.lock() = h;
    }

    /// Copy of the current state.
    pub fn snapshot(&self) -> Hist {
        self.0.lock().clone()
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<Mutex<Hist>>),
}

type Collector = Box<dyn Fn(&mut Vec<Sample>) + Send>;

struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
    collectors: Mutex<BTreeMap<String, Collector>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        slots: Mutex::new(BTreeMap::new()),
        collectors: Mutex::new(BTreeMap::new()),
    })
}

/// Get or create the counter named `name`.
///
/// # Panics
/// If `name` already exists with a different instrument type.
pub fn counter(name: &str) -> Counter {
    let mut slots = registry().slots.lock();
    let slot =
        slots.entry(name.to_string()).or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
    match slot {
        Slot::Counter(a) => Counter(Arc::clone(a)),
        _ => panic!("obs: metric {name:?} already registered with a different type"),
    }
}

/// Get or create the gauge named `name`.
///
/// # Panics
/// If `name` already exists with a different instrument type.
pub fn gauge(name: &str) -> Gauge {
    let mut slots = registry().slots.lock();
    let slot = slots
        .entry(name.to_string())
        .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
    match slot {
        Slot::Gauge(a) => Gauge(Arc::clone(a)),
        _ => panic!("obs: metric {name:?} already registered with a different type"),
    }
}

/// Get or create the histogram named `name`.
///
/// # Panics
/// If `name` already exists with a different instrument type.
pub fn histogram(name: &str) -> Histogram {
    let mut slots = registry().slots.lock();
    let slot = slots
        .entry(name.to_string())
        .or_insert_with(|| Slot::Hist(Arc::new(Mutex::new(Hist::new()))));
    match slot {
        Slot::Hist(h) => Histogram(Arc::clone(h)),
        _ => panic!("obs: metric {name:?} already registered with a different type"),
    }
}

/// Register (or replace) the collector stored under `key`. Collectors run at
/// [`snapshot`] time and push additional [`Sample`]s; keying makes repeated
/// installation from `Once`-style initialisers idempotent.
pub fn register_collector(key: &str, f: impl Fn(&mut Vec<Sample>) + Send + 'static) {
    registry().collectors.lock().insert(key.to_string(), Box::new(f));
}

/// A snapshotted metric value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(f64),
    /// Full distribution.
    Hist(Hist),
}

/// One named metric in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct Sample {
    /// Metric name (slash-separated label convention, e.g. `lat.wall_ns/P-ART/a`).
    pub name: String,
    /// The value.
    pub value: Value,
}

/// Point-in-time view of every registered instrument and collector output,
/// sorted by name.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All samples, ascending by name.
    pub samples: Vec<Sample>,
}

/// Take a snapshot of the whole registry (instruments + collectors).
pub fn snapshot() -> Snapshot {
    let mut samples: Vec<Sample> = Vec::new();
    {
        let slots = registry().slots.lock();
        for (name, slot) in slots.iter() {
            let value = match slot {
                Slot::Counter(a) => Value::Counter(a.load(Ordering::Relaxed)),
                Slot::Gauge(a) => Value::Gauge(f64::from_bits(a.load(Ordering::Relaxed))),
                Slot::Hist(h) => Value::Hist(h.lock().clone()),
            };
            samples.push(Sample { name: name.clone(), value });
        }
    }
    {
        let collectors = registry().collectors.lock();
        for f in collectors.values() {
            f(&mut samples);
        }
    }
    samples.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot { samples }
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // `{}` prints integral floats without a decimal point, which is
        // still a valid JSON number, so nothing more to do.
    } else {
        out.push_str("null");
    }
}

impl Snapshot {
    /// Look up a sample by exact name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.samples
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.samples[i].value)
    }

    /// Counter value by name, if present and a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(Value::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, if present and a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(Value::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by name, if present and a histogram.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        match self.get(name) {
            Some(Value::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// All sample names, ascending.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.samples.iter().map(|s| s.name.as_str())
    }

    /// Self-describing JSON export:
    ///
    /// ```json
    /// {"schema":"recipe-obs-metrics/v1","metrics":[
    ///   {"name":"pm.clwb","type":"counter","value":12},
    ///   {"name":"peak_mb","type":"gauge","value":1.5},
    ///   {"name":"lat","type":"histogram","count":2,"sum":30,"min":10,"max":20,
    ///    "p50":10,"p90":20,"p99":20,"p999":20,"buckets":[[10,1],[20,1]]}
    /// ]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"metrics\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape(&mut out, &s.name);
            out.push_str("\",");
            match &s.value {
                Value::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                Value::Gauge(v) => {
                    out.push_str("\"type\":\"gauge\",\"value\":");
                    json_f64(&mut out, *v);
                }
                Value::Hist(h) => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                        h.quantile(0.999),
                    );
                    for (j, (b, c)) in h.nonzero_buckets().into_iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{b},{c}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Flat CSV export; histograms expand into their summary statistics.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,type,value,count,sum,min,max,p50,p90,p99,p999\n");
        for s in &self.samples {
            let name = s.name.replace(',', ";");
            match &s.value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "{name},counter,{v},,,,,,,,");
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "{name},gauge,{v},,,,,,,,");
                }
                Value::Hist(h) => {
                    let _ = writeln!(
                        out,
                        "{name},histogram,,{},{},{},{},{},{},{},{}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                        h.quantile(0.999),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        counter("t.reg.shared").add(2);
        counter("t.reg.shared").add(3);
        assert_eq!(counter("t.reg.shared").get(), 5);
        gauge("t.reg.g").set(1.25);
        assert_eq!(gauge("t.reg.g").get(), 1.25);
        histogram("t.reg.h").record(7);
        assert_eq!(histogram("t.reg.h").snapshot().count(), 1);
    }

    #[test]
    fn snapshot_contains_instruments_and_collectors() {
        counter("t.snap.c").add(9);
        register_collector("t.snap.collector", |out| {
            out.push(Sample { name: "t.snap.pushed".into(), value: Value::Gauge(4.5) });
        });
        let snap = snapshot();
        assert_eq!(snap.counter_value("t.snap.c"), Some(9));
        assert_eq!(snap.gauge_value("t.snap.pushed"), Some(4.5));
        // Sorted => binary search works for every name present.
        let names: Vec<_> = snap.names().collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn collector_registration_is_idempotent_by_key() {
        register_collector("t.idem", |out| {
            out.push(Sample { name: "t.idem.v".into(), value: Value::Counter(1) });
        });
        register_collector("t.idem", |out| {
            out.push(Sample { name: "t.idem.v".into(), value: Value::Counter(2) });
        });
        let snap = snapshot();
        let hits = snap.samples.iter().filter(|s| s.name == "t.idem.v").count();
        assert_eq!(hits, 1, "re-registration must replace, not duplicate");
        assert_eq!(snap.counter_value("t.idem.v"), Some(2));
    }

    #[test]
    fn json_export_is_parseable_and_typed() {
        counter("t.json.c").add(1);
        gauge("t.json.g").set(2.5);
        let h = histogram("t.json.h");
        h.record(100);
        h.record(200);
        let json = snapshot().to_json();
        let doc = crate::json::parse(&json).expect("export must be valid JSON");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        let metrics = doc.get("metrics").and_then(|v| v.as_array()).expect("metrics array");
        let find = |name: &str| {
            metrics
                .iter()
                .find(|m| m.get("name").and_then(|v| v.as_str()) == Some(name))
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert_eq!(find("t.json.c").get("type").and_then(|v| v.as_str()), Some("counter"));
        assert_eq!(find("t.json.g").get("value").and_then(|v| v.as_f64()), Some(2.5));
        let hist = find("t.json.h");
        assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(2.0));
        assert!(hist.get("p999").is_some());
        assert!(!hist.get("buckets").and_then(|v| v.as_array()).expect("buckets").is_empty());
    }

    #[test]
    fn csv_export_has_stable_header() {
        counter("t.csv.c").inc();
        let csv = snapshot().to_csv();
        assert!(csv.starts_with("name,type,value,count,sum,min,max,p50,p90,p99,p999\n"));
        assert!(csv.lines().any(|l| l.starts_with("t.csv.c,counter,")));
    }
}
