//! Opt-in structured event tracing: bounded per-thread ring buffers of
//! compact records, globally sequenced, drained on demand.
//!
//! Tracing is off by default; [`emit`] then costs one relaxed atomic load
//! and performs **zero allocation** (asserted by the crate's
//! `tests/no_alloc.rs`). Enable it with [`set_enabled`] or by exporting
//! `RECIPE_OBS_EVENTS=1` and calling [`init_from_env`]. When enabled, each
//! thread lazily registers a fixed-capacity ring (default 4096 records,
//! `RECIPE_OBS_RING` overrides); a full ring overwrites its oldest record
//! and counts the drop, so the most recent history — the part that explains
//! a failure — is always retained.
//!
//! Records carry a global sequence number from one shared atomic, so a
//! [`drain`] merges every thread's ring into a single totally-ordered
//! timeline. The crash harness uses exactly this: clear at the start of a
//! crash state, dump on failure.
//!
//! ```
//! let was = obs::event::set_enabled(true);
//! obs::event::clear();
//! obs::event::emit("doc.step", "example", 7, 0);
//! let dump = obs::event::drain();
//! obs::event::set_enabled(was);
//! assert_eq!(dump.events.len(), 1);
//! assert_eq!(dump.events[0].kind, "doc.step");
//! assert_eq!(dump.events[0].a, 7);
//! ```

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default per-thread ring capacity (records); `RECIPE_OBS_RING` overrides.
pub const DEFAULT_RING_CAP: usize = 4096;

/// One traced event. `kind` is a stable dotted family name
/// (`"crash.site"`, `"bwtree.smo"`, ...), `detail` a static qualifier
/// (site name, SMO step), and `a`/`b` free-form payload words.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Small per-thread id assigned at ring registration.
    pub tid: u32,
    /// Event family.
    pub kind: &'static str,
    /// Qualifier within the family.
    pub detail: &'static str,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

struct Ring {
    tid: u32,
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    next: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            // Overwrite the oldest record: newest history wins.
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn take(&mut self) -> (Vec<Event>, u64) {
        self.next = 0;
        (std::mem::take(&mut self.buf), std::mem::take(&mut self.dropped))
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn ring_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("RECIPE_OBS_RING")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_RING_CAP)
    })
}

thread_local! {
    static MY_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

/// Is event tracing currently enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable/disable tracing; returns the previous setting.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// Enable tracing when `RECIPE_OBS_EVENTS` is set to a truthy value
/// (`1`/`true`/`yes`/`on`).
pub fn init_from_env() {
    if let Ok(v) = std::env::var("RECIPE_OBS_EVENTS") {
        let v = v.trim().to_ascii_lowercase();
        if matches!(v.as_str(), "1" | "true" | "yes" | "on") {
            ENABLED.store(true, Ordering::Relaxed);
        }
    }
}

/// Record an event if tracing is enabled. The disabled path is a single
/// relaxed load with no allocation and no thread-local access.
#[inline]
pub fn emit(kind: &'static str, detail: &'static str, a: u64, b: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    emit_slow(kind, detail, a, b);
}

#[cold]
fn emit_slow(kind: &'static str, detail: &'static str, a: u64, b: u64) {
    MY_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Mutex::new(Ring {
                tid,
                buf: Vec::with_capacity(ring_cap()),
                cap: ring_cap(),
                next: 0,
                dropped: 0,
            }));
            rings().lock().push(Arc::clone(&ring));
            ring
        });
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut ring = arc.lock();
        let tid = ring.tid;
        ring.push(Event { seq, tid, kind, detail, a, b });
    });
}

/// A drained event timeline.
#[derive(Clone, Debug, Default)]
pub struct Dump {
    /// Events from every thread, ascending by global sequence number.
    pub events: Vec<Event>,
    /// Records overwritten before the drain (oldest-dropped accounting).
    pub dropped: u64,
}

impl Dump {
    /// The newest `n` events as their own dump; everything older is folded
    /// into the `dropped` count. Used by failure reporters that want the
    /// tail of the timeline without flooding the log.
    #[must_use]
    pub fn tail(&self, n: usize) -> Dump {
        let skip = self.events.len().saturating_sub(n);
        Dump { events: self.events[skip..].to_vec(), dropped: self.dropped + skip as u64 }
    }
}

impl std::fmt::Display for Dump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for ev in &self.events {
            writeln!(
                f,
                "  #{seq:<6} t{tid} {kind} {detail} a={a} b={b}",
                seq = ev.seq,
                tid = ev.tid,
                kind = ev.kind,
                detail = ev.detail,
                a = ev.a,
                b = ev.b
            )?;
        }
        if self.dropped > 0 {
            writeln!(f, "  ({} older events dropped by ring overflow)", self.dropped)?;
        }
        Ok(())
    }
}

/// Drain every thread's ring into one sequence-ordered timeline, emptying
/// the rings. Rings belonging to threads that have since exited are drained
/// too, then discarded.
pub fn drain() -> Dump {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut rings = rings().lock();
    rings.retain(|arc| {
        let (evs, drops) = arc.lock().take();
        events.extend(evs);
        dropped += drops;
        // strong_count == 1 means only the registry holds it: the owning
        // thread exited, so the (now empty) ring can be discarded.
        Arc::strong_count(arc) > 1
    });
    drop(rings);
    events.sort_unstable_by_key(|e| e.seq);
    Dump { events, dropped }
}

/// Empty all rings (and discard rings of exited threads) without building a
/// dump. Call at the start of a scoped capture, e.g. one crash state.
pub fn clear() {
    let mut rings = rings().lock();
    rings.retain(|arc| {
        let _ = arc.lock().take();
        Arc::strong_count(arc) > 1
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The event subsystem is global, so these tests serialise on a lock to
    // avoid interleaving with each other under the multi-threaded test
    // runner.
    fn guard() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
    }

    #[test]
    fn disabled_emit_records_nothing() {
        let _g = guard();
        let was = set_enabled(false);
        clear();
        emit("t.ev", "off", 1, 2);
        let dump = drain();
        set_enabled(was);
        assert!(dump.events.is_empty());
        assert_eq!(dump.dropped, 0);
    }

    #[test]
    fn events_are_sequenced_across_threads() {
        let _g = guard();
        let was = set_enabled(true);
        clear();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..50u64 {
                        emit("t.ev", "mt", t, i);
                    }
                });
            }
        });
        let dump = drain();
        set_enabled(was);
        assert_eq!(dump.events.len(), 200);
        for w in dump.events.windows(2) {
            assert!(w[0].seq < w[1].seq, "strictly ascending seq");
        }
        // Per-thread order must be preserved within the global order.
        for t in 0..4u64 {
            let per: Vec<u64> = dump.events.iter().filter(|e| e.a == t).map(|e| e.b).collect();
            assert_eq!(per, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _g = guard();
        let was = set_enabled(true);
        clear();
        // A dedicated thread gets a fresh ring; overflow it deliberately.
        let cap = ring_cap();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..(cap as u64 + 10) {
                    emit("t.ev", "ovf", i, 0);
                }
            });
        });
        let dump = drain();
        set_enabled(was);
        let ovf: Vec<&Event> = dump.events.iter().filter(|e| e.detail == "ovf").collect();
        assert_eq!(ovf.len(), cap, "ring keeps exactly `cap` newest records");
        assert_eq!(dump.dropped, 10, "dropped records are accounted");
        // The *newest* records survive.
        let min_a = ovf.iter().map(|e| e.a).min().unwrap();
        assert_eq!(min_a, 10);
    }

    #[test]
    fn tail_keeps_newest_and_accounts_for_the_rest() {
        let _g = guard();
        let was = set_enabled(true);
        clear();
        for i in 0..10u64 {
            emit("t.ev", "tail", i, 0);
        }
        let dump = drain();
        set_enabled(was);
        let tail = dump.tail(3);
        assert_eq!(tail.events.len(), 3);
        assert_eq!(tail.events[0].a, 7, "newest three survive");
        assert_eq!(tail.dropped, 7, "older events counted as dropped");
    }

    #[test]
    fn clear_discards_pending_events() {
        let _g = guard();
        let was = set_enabled(true);
        clear();
        emit("t.ev", "gone", 0, 0);
        clear();
        emit("t.ev", "kept", 0, 0);
        let dump = drain();
        set_enabled(was);
        let details: Vec<&str> = dump.events.iter().map(|e| e.detail).collect();
        assert!(!details.contains(&"gone"));
        assert!(details.contains(&"kept"));
    }
}
