//! Minimal JSON parser used to validate the registry's own export and the
//! `metrics.json` files the bench binaries write — a schema check without an
//! external dependency. Accepts standard JSON (RFC 8259); numbers parse to
//! `f64`.
//!
//! ```
//! let doc = obs::json::parse(r#"{"a":[1,2.5,"x"],"b":null}"#).unwrap();
//! assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
//! assert!(doc.get("b").unwrap().is_null());
//! assert!(obs::json::parse("{oops}").is_err());
//! ```

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number (as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing on
                    // the next boundary is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":{"b":[1,{"c":"d"},[]]},"e":false}"#).unwrap();
        let b = doc.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b[1].get("c").unwrap().as_str(), Some("d"));
        assert_eq!(doc.get("e").unwrap(), &Json::Bool(false));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn handles_unicode_and_empty_containers() {
        let doc = parse(r#"{"k":"héllo ☃","a":[],"o":{}}"#).unwrap();
        assert_eq!(doc.get("k").unwrap().as_str(), Some("héllo ☃"));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(doc.get("o").unwrap().as_object().unwrap().len(), 0);
    }
}
