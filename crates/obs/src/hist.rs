//! Log-bucketed HDR-style histogram of `u64` values.
//!
//! The bucket layout is the classic HDR scheme: values below `2^SUB_BITS` get
//! one exact bucket each; above that, every power-of-two octave is divided
//! into `2^SUB_BITS` linear sub-buckets, so the relative width of any bucket
//! is at most `2^-SUB_BITS` (3.125% with the default of 5 bits) and a
//! reported quantile is within half a bucket — ~1.6% — of the true value.
//! The whole `u64` range is representable in [`N_BUCKETS`] buckets (15 KiB of
//! counters), so recording never saturates or clips.
//!
//! Everything is plain integer arithmetic over a dense counter array:
//! recording the same values in any order, or merging per-thread histograms
//! in any order, yields byte-identical state — the property the crash/bench
//! harnesses rely on for deterministic output under the simulated clock.
//!
//! ```
//! let mut h = obs::Hist::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 1000);
//! let p50 = h.quantile(0.50);
//! // Within the documented 2^-SUB_BITS relative error of the true median.
//! assert!((p50 as f64 - 500.0).abs() <= 500.0 / 32.0 + 1.0);
//! assert_eq!(h.quantile(1.0), 1000); // min/max are tracked exactly
//! ```

/// Number of linear sub-bucket bits per octave; buckets are at most
/// `2^-SUB_BITS` (3.125%) wide relative to their value.
pub const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range (octave groups
/// `0..=64-SUB_BITS`, each `2^SUB_BITS` wide).
pub const N_BUCKETS: usize = ((64 - SUB_BITS + 1) as usize) << SUB_BITS;

/// Dense bucket index for a value. Monotone in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let mant = ((v >> (exp - SUB_BITS)) & (SUBS - 1)) as usize;
        (((exp - SUB_BITS + 1) as usize) << SUB_BITS) | mant
    }
}

/// Inclusive lower bound of bucket `i` (the smallest value mapping to it).
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    let g = (i >> SUB_BITS) as u32;
    let m = (i as u64) & (SUBS - 1);
    if g == 0 {
        m
    } else {
        let exp = g + SUB_BITS - 1;
        (1u64 << exp) | (m << (exp - SUB_BITS))
    }
}

/// Representative value reported for bucket `i`: its midpoint (exact value
/// for the single-value buckets of the first two octave groups).
#[inline]
pub fn bucket_value(i: usize) -> u64 {
    let g = (i >> SUB_BITS) as u32;
    if g <= 1 {
        bucket_lower(i)
    } else {
        let width = 1u64 << (g - 1);
        bucket_lower(i) + width / 2
    }
}

/// A mergeable log-bucketed histogram with exact `count`/`sum`/`min`/`max`.
#[derive(Clone, PartialEq, Eq)]
pub struct Hist {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for Hist {
    /// Compact summary (the dense bucket array would drown any containing
    /// struct's debug output).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist { counts: vec![0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Merging is commutative and
    /// associative, so any merge order over per-thread histograms produces
    /// identical state.
    pub fn merge(&mut self, other: &Hist) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`. Returns the representative
    /// value of the bucket holding the target rank, clamped into
    /// `[min, max]` so the single-observation edges stay exact; 0 when
    /// empty. Within `2^-SUB_BITS` relative error of the true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The top rank is the exactly-tracked maximum.
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The observations recorded since `earlier` was captured: per-bucket
    /// saturating subtraction, for turning a pair of cumulative snapshots of
    /// the same histogram into a run-local (or streaming-delta) view.
    /// `earlier` must be a previous state of the same histogram; buckets and
    /// `sum` subtract exactly, while `min`/`max` are re-derived from the
    /// surviving buckets (bucket-representative precision, the same bound as
    /// [`Hist::quantile`]).
    #[must_use]
    pub fn diff(&self, earlier: &Hist) -> Hist {
        let mut out = Hist::new();
        for (i, (dst, (&now, &was))) in
            out.counts.iter_mut().zip(self.counts.iter().zip(earlier.counts.iter())).enumerate()
        {
            *dst = now.saturating_sub(was);
            if *dst != 0 {
                out.count += *dst;
                out.min = out.min.min(bucket_lower(i));
                out.max = out.max.max(bucket_value(i));
            }
        }
        if out.count != 0 {
            out.sum = self.sum.saturating_sub(earlier.sum);
            // The exact extremes survive a diff when the endpoint buckets did.
            if bucket_index(self.max) == bucket_index(out.max) {
                out.max = self.max;
            }
            if self.min >= out.min && bucket_index(self.min) == bucket_index(out.min) {
                out.min = self.min;
            }
        }
        out
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, ascending — the
    /// sparse form used by the registry's JSON export.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuild a histogram from its sparse bucket form (inverse of
    /// [`Hist::nonzero_buckets`] up to the exact `sum`, which the sparse form
    /// approximates by bucket representatives).
    pub fn from_buckets(buckets: &[(u32, u64)]) -> Self {
        let mut h = Hist::new();
        for &(i, c) in buckets {
            h.record_n(bucket_value(i as usize), c);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_dense_at_boundaries() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..10_000u64 {
            let i = bucket_index(v);
            assert!(i == prev || i == prev + 1, "index jumps at v={v}");
            prev = i;
        }
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn bucket_lower_roundtrips() {
        for i in 0..N_BUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i} maps back");
            let rep = bucket_value(i);
            assert_eq!(bucket_index(rep), i, "representative of bucket {i} maps back");
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Hist::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, truth) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 1.0 / 32.0, "q={q}: got {got}, want {truth} (rel {rel})");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Hist::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record(x >> 40);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) regressed");
            prev = v;
        }
    }

    #[test]
    fn merge_is_order_independent_and_deterministic() {
        let vals: Vec<u64> = (0..5000u64).map(|i| i * i % 777_777).collect();
        let mut whole = Hist::new();
        for &v in &vals {
            whole.record(v);
        }
        let mut parts: Vec<Hist> = (0..4).map(|_| Hist::new()).collect();
        for (i, &v) in vals.iter().enumerate() {
            parts[i % 4].record(v);
        }
        let mut fwd = Hist::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Hist::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
    }

    #[test]
    fn multi_thread_merge_is_deterministic() {
        // Four threads record disjoint slices into private histograms; the
        // merged result must be byte-identical to the single-threaded
        // histogram regardless of scheduling (stable under
        // RUST_TEST_THREADS=4).
        let mut whole = Hist::new();
        for v in 0..8_000u64 {
            whole.record(v * 37 % 100_003);
        }
        let shared = parking_lot::Mutex::new(Hist::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let shared = &shared;
                s.spawn(move || {
                    let mut local = Hist::new();
                    for v in (t * 2_000)..((t + 1) * 2_000) {
                        local.record(v * 37 % 100_003);
                    }
                    shared.lock().merge(&local);
                });
            }
        });
        assert_eq!(*shared.lock(), whole);
    }

    #[test]
    fn diff_recovers_the_increment() {
        let mut h = Hist::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let mark = h.clone();
        for v in [5u64, 500, 500, 9_000] {
            h.record(v);
        }
        let d = h.diff(&mark);
        assert_eq!(d.count(), 4);
        assert_eq!(d.sum(), 5 + 500 + 500 + 9_000);
        assert_eq!(d.min(), 5, "new minimum is exact (it survives in h.min)");
        let mut expect = Hist::new();
        for v in [5u64, 500, 500, 9_000] {
            expect.record(v);
        }
        assert_eq!(d.nonzero_buckets(), expect.nonzero_buckets());
        // Quantiles of the diff match the increment to bucket precision.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(bucket_index(d.quantile(q)), bucket_index(expect.quantile(q)));
        }
        // Diffing identical states is empty; diffing from empty is identity.
        assert!(h.diff(&h.clone()).is_empty());
        assert_eq!(h.diff(&Hist::new()), h);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn sparse_roundtrip_preserves_counts_and_quantiles() {
        let mut h = Hist::new();
        for v in [1u64, 5, 40, 40, 1000, 123_456, 9_999_999] {
            h.record(v);
        }
        let back = Hist::from_buckets(&h.nonzero_buckets());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.nonzero_buckets(), h.nonzero_buckets());
        for q in [0.0, 0.5, 0.99, 1.0] {
            // Same buckets => same bucket-representative quantiles (up to the
            // exact min/max clamp, which the sparse form widens slightly).
            assert_eq!(bucket_index(back.quantile(q)), bucket_index(h.quantile(q)));
        }
    }
}
