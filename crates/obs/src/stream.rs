//! Streaming snapshot export: periodic `recipe-obs-metrics/v1` snapshots
//! captured *while a run is in flight*.
//!
//! [`snapshot`]/[`Snapshot::to_json`] export end-of-run state; they cannot
//! show a migration's phases or an overload's onset. A [`SnapshotStream`]
//! fills that gap: it captures full registry snapshots on a wall-clock
//! interval (a background ticker thread), on an operation-count trigger
//! ([`SnapshotStream::record_ops`], for drivers that prefer deterministic
//! op-spaced points), or both. Each capture is a complete, schema-valid
//! snapshot — the same `recipe-obs-metrics/v1` JSON as the end-of-run export
//! — stamped with a sequence number and the stream-relative capture time, so
//! consumers (the service's `loadgen` timeline, `service_smoke`'s CI gate)
//! can difference consecutive points into per-phase rates.
//!
//! ```
//! let stream = obs::SnapshotStream::start(obs::StreamConfig::every_ops(100));
//! obs::counter("doc.stream.ops").add(250);
//! stream.record_ops(250);
//! let points = stream.stop(); // always captures one final point
//! assert_eq!(points.len(), 3, "two op-triggered + one final");
//! assert!(points.windows(2).all(|w| w[0].seq < w[1].seq));
//! ```

use crate::registry::{snapshot, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// When a [`SnapshotStream`] captures. Both triggers may be active at once;
/// each capture is independent (no coalescing).
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Capture every `interval` of wall time on a background thread.
    /// `None` disables the ticker.
    pub interval: Option<Duration>,
    /// Capture every `every_ops` operations reported through
    /// [`SnapshotStream::record_ops`]. `0` disables the op trigger.
    pub every_ops: u64,
}

impl StreamConfig {
    /// Wall-clock capture every `ms` milliseconds.
    #[must_use]
    pub fn every_millis(ms: u64) -> StreamConfig {
        StreamConfig { interval: Some(Duration::from_millis(ms.max(1))), every_ops: 0 }
    }

    /// Deterministic capture every `n` reported operations.
    #[must_use]
    pub fn every_ops(n: u64) -> StreamConfig {
        StreamConfig { interval: None, every_ops: n }
    }
}

/// One captured point of a [`SnapshotStream`].
#[derive(Clone, Debug)]
pub struct StreamedSnapshot {
    /// Capture sequence number, starting at 0, strictly increasing.
    pub seq: u64,
    /// Milliseconds since the stream started.
    pub at_ms: u64,
    /// The full registry snapshot at capture time.
    pub snapshot: Snapshot,
}

struct Shared {
    /// Captured points, appended under lock (captures are rare and already
    /// pay a full registry walk; contention here is irrelevant).
    out: Mutex<Vec<StreamedSnapshot>>,
    /// `stop` flag + condvar so [`SnapshotStream::stop`] interrupts the
    /// ticker's sleep immediately instead of waiting out the interval.
    stopped: Mutex<bool>,
    cv: Condvar,
    seq: AtomicU64,
    ops: AtomicU64,
    every_ops: u64,
    started: Instant,
}

impl Shared {
    fn capture(&self) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at_ms = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let snap = snapshot();
        self.out.lock().unwrap().push(StreamedSnapshot { seq, at_ms, snapshot: snap });
    }
}

/// A running snapshot stream; see the module docs. Create with
/// [`SnapshotStream::start`], finish with [`SnapshotStream::stop`] (which
/// always captures one final point, so even a degenerate run yields a
/// timeline endpoint).
pub struct SnapshotStream {
    shared: Arc<Shared>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotStream {
    /// Start capturing per `cfg`. The wall-clock ticker (if configured)
    /// captures its first point one interval *after* start — the start-of-run
    /// state is the baseline consumers diff against.
    #[must_use]
    pub fn start(cfg: StreamConfig) -> SnapshotStream {
        let shared = Arc::new(Shared {
            out: Mutex::new(Vec::new()),
            stopped: Mutex::new(false),
            cv: Condvar::new(),
            seq: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            every_ops: cfg.every_ops,
            started: Instant::now(),
        });
        let ticker = cfg.interval.map(|interval| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("obs-snapshot-stream".into())
                .spawn(move || {
                    let mut g = sh.stopped.lock().unwrap();
                    loop {
                        let (guard, timeout) = sh.cv.wait_timeout(g, interval).unwrap();
                        g = guard;
                        if *g {
                            return;
                        }
                        if timeout.timed_out() {
                            drop(g);
                            sh.capture();
                            g = sh.stopped.lock().unwrap();
                        }
                    }
                })
                .expect("spawn snapshot-stream ticker")
        });
        SnapshotStream { shared, ticker }
    }

    /// Report `n` operations toward the op-count trigger: a capture fires
    /// each time the cumulative count crosses a multiple of the configured
    /// `every_ops`. A no-op when the op trigger is disabled. Callers may
    /// report from any thread; a crossing is attributed to exactly one
    /// caller, so concurrent reporters never double-capture a boundary.
    pub fn record_ops(&self, n: u64) {
        if self.shared.every_ops == 0 || n == 0 {
            return;
        }
        let before = self.shared.ops.fetch_add(n, Ordering::Relaxed);
        let crossings = (before + n) / self.shared.every_ops - before / self.shared.every_ops;
        for _ in 0..crossings {
            self.shared.capture();
        }
    }

    /// Points captured so far (the stream keeps running).
    #[must_use]
    pub fn points(&self) -> usize {
        self.shared.out.lock().unwrap().len()
    }

    /// Stop the stream: halt the ticker, capture one final point, and return
    /// every captured point in sequence order.
    #[must_use]
    pub fn stop(self) -> Vec<StreamedSnapshot> {
        *self.shared.stopped.lock().unwrap() = true;
        self.shared.cv.notify_all();
        if let Some(t) = self.ticker {
            let _ = t.join();
        }
        self.shared.capture();
        let mut points = std::mem::take(&mut *self.shared.out.lock().unwrap());
        points.sort_by_key(|p| p.seq);
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_trigger_is_deterministic() {
        let s = SnapshotStream::start(StreamConfig::every_ops(100));
        s.record_ops(0); // no-op
        s.record_ops(99); // 99: no crossing
        assert_eq!(s.points(), 0);
        s.record_ops(1); // 100: crossing
        assert_eq!(s.points(), 1);
        s.record_ops(250); // 350: crosses 200 and 300
        assert_eq!(s.points(), 3);
        let points = s.stop(); // + final
        assert_eq!(points.len(), 4);
        assert!(points.windows(2).all(|w| w[0].seq + 1 == w[1].seq), "dense sequence");
    }

    #[test]
    fn interval_trigger_streams_schema_valid_snapshots() {
        let c = crate::counter("t.stream.ops");
        let s = SnapshotStream::start(StreamConfig::every_millis(5));
        // Monotone source the snapshots must observe in monotone order.
        let t0 = Instant::now();
        while s.points() < 3 && t0.elapsed() < Duration::from_secs(5) {
            c.inc();
            std::thread::sleep(Duration::from_millis(1));
        }
        let points = s.stop();
        assert!(points.len() >= 4, "3 ticks + final, got {}", points.len());
        assert!(points.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let mut prev = 0;
        for p in &points {
            // Every point is a full, schema-valid export.
            let doc = crate::json::parse(&p.snapshot.to_json()).expect("valid JSON");
            assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(crate::SCHEMA));
            let v = p.snapshot.counter_value("t.stream.ops").expect("counter present");
            assert!(v >= prev, "counter went backwards across snapshots");
            prev = v;
        }
    }

    #[test]
    fn stop_always_yields_a_final_point() {
        let s = SnapshotStream::start(StreamConfig::every_ops(1_000_000));
        let points = s.stop();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].seq, 0);
    }
}
