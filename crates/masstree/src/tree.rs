//! The Masstree trie-of-B+-trees and its RECIPE conversion.
//!
//! Keys are consumed in 8-byte big-endian slices ([`recipe::key::keyslice`]); each
//! trie layer is a B+ tree over `(slice, length class)` pairs whose leaves either
//! terminate a key (length class 0..=8, value word holds the record value) or link to
//! the next layer (length class [`LAYER`], value word points to a [`Layer`]). Readers
//! are non-blocking: they descend with B-link move-right checks, snapshot each leaf's
//! permutation word, and validate the entry after reading its value; writers lock the
//! one leaf they modify and commit non-SMO writes with a single atomic store of the
//! permutation (RECIPE Condition #1 for non-SMO operations).
//!
//! Splits are the multi-step SMO that puts Masstree under Condition #3 ("writers
//! don't fix inconsistencies"): sibling persisted → sibling linked → high key set →
//! left half truncated, with a crash site after each atomic step. A crash between the
//! steps leaves duplicate entries and/or a missing high key. Readers *detect and
//! tolerate* these states (move-right plus scan-time duplicate suppression) but never
//! repair them; the helper built from the write path runs at [`Masstree::recover`],
//! which completes any torn split (derives the missing high key from the sibling's
//! minimum, truncates stale upper halves, re-roots orphaned sibling chains) and
//! re-initialises every node lock, exactly as RECIPE prescribes for restart.

use crate::node::{Node, Perm, LAYER, WIDTH};
use recipe::key::keyslice;
use recipe::lock::VersionGuard;
use recipe::persist::PersistMode;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, Ordering};

/// One trie layer: a B+ tree indexed by the 8-byte key slice at this layer's depth.
///
/// The indirection (rather than pointing at the root node directly) keeps the
/// next-layer link in parent leaves stable across root splits of the sublayer.
pub struct Layer {
    /// Root node of this layer's B+ tree.
    pub root: AtomicPtr<Node>,
}

/// Outcome of attempting an operation within one layer.
enum LayerStep {
    /// The operation finished in this layer.
    Done(bool),
    /// The key continues in the next layer.
    Descend(*const Layer),
}

/// The Masstree, generic over the persistence policy: `Masstree<Dram>` is the
/// original concurrent DRAM index, `Masstree<Pmem>` is P-Masstree.
pub struct Masstree<P: PersistMode> {
    layer0: Layer,
    /// Serializes structure modifications (splits) across all layers, like the
    /// original's hand-over-hand split locking collapsed to one lock: splits are rare
    /// and the unprotected parent update is the §3 lost-key bug class.
    smo_lock: parking_lot::Mutex<()>,
    _policy: PhantomData<P>,
}

impl<P: PersistMode> Default for Masstree<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn node_ref<'a>(ptr: *mut Node) -> &'a Node {
    // SAFETY: nodes are never freed while the tree is alive (deferred reclamation,
    // matching the PM allocator's garbage-collection assumption).
    unsafe { &*ptr }
}

#[inline]
fn layer_ref<'a>(ptr: *const Layer) -> &'a Layer {
    // SAFETY: layers are never freed while the tree is alive.
    unsafe { &*ptr }
}

/// Length class of the key remainder at byte offset `off`: the number of bytes the
/// slice covers (0..=8), or [`LAYER`] if the key continues past the slice.
#[inline]
fn len_class(key: &[u8], off: usize) -> u8 {
    let rem = key.len().saturating_sub(off);
    if rem > 8 {
        LAYER
    } else {
        rem as u8
    }
}

/// Write one entry into a free slot of a locked node and publish it with a single
/// atomic store of the permutation (flush + fence after each step). `sites` names the
/// crash sites declared after the slot persist and after the commit.
fn publish_entry<P: PersistMode>(
    node: &Node,
    perm: Perm,
    rank: usize,
    slice: u64,
    lc: u8,
    val: u64,
    sites: (&'static str, &'static str),
) {
    let slot = perm.free_slot().expect("caller checked the node is not full");
    node.keys[slot].store(slice, Ordering::Release);
    P::mark_dirty_obj(&node.keys[slot]);
    node.lens[slot].store(lc, Ordering::Release);
    P::mark_dirty_obj(&node.lens[slot]);
    node.vals[slot].store(val, Ordering::Release);
    P::mark_dirty_obj(&node.vals[slot]);
    P::persist_obj(&node.keys[slot], false);
    P::persist_obj(&node.lens[slot], false);
    P::persist_obj(&node.vals[slot], true);
    P::crash_site(sites.0);
    node.perm.store(perm.insert(rank, slot).0, Ordering::Release);
    P::mark_dirty_obj(&node.perm);
    P::persist_obj(&node.perm, true);
    P::crash_site(sites.1);
}

/// Leftmost leaf of the subtree rooted at `root` (descends the leftmost spine).
fn leftmost_leaf(root: *mut Node) -> *mut Node {
    let mut cur = root;
    loop {
        let node = node_ref(cur);
        if node.is_leaf() {
            return cur;
        }
        cur = node.leftmost.load(Ordering::Acquire) as *mut Node;
    }
}

/// The children (and separator slices) routed by the internal level whose chain
/// starts at `parent_head`. Shared by the recovery walkers; single-threaded use.
fn routed_by_level(
    parent_head: *mut Node,
) -> (std::collections::HashSet<u64>, std::collections::HashSet<u64>) {
    let mut routed = std::collections::HashSet::new();
    let mut seps = std::collections::HashSet::new();
    let mut p = parent_head;
    while !p.is_null() {
        let pn = node_ref(p);
        routed.insert(pn.leftmost.load(Ordering::Acquire));
        let perm = pn.perm_snapshot();
        for rank in 0..perm.count() {
            let slot = perm.slot(rank);
            seps.insert(pn.keys[slot].load(Ordering::Acquire));
            routed.insert(pn.vals[slot].load(Ordering::Acquire));
        }
        p = pn.next.load(Ordering::Acquire);
    }
    (routed, seps)
}

/// Visit every sublayer linked from the leaf chain starting at `leaf_head`.
fn for_each_sublayer(leaf_head: *mut Node, mut f: impl FnMut(&Layer)) {
    let mut cur = leaf_head;
    while !cur.is_null() {
        let node = node_ref(cur);
        let perm = node.perm_snapshot();
        for rank in 0..perm.count() {
            let slot = perm.slot(rank);
            if node.lens[slot].load(Ordering::Acquire) == LAYER {
                let sub = node.vals[slot].load(Ordering::Acquire);
                f(layer_ref(sub as *const Layer));
            }
        }
        cur = node.next.load(Ordering::Acquire);
    }
}

impl<P: PersistMode> Masstree<P> {
    /// Create an empty tree: a single layer whose root is an empty leaf.
    #[must_use]
    pub fn new() -> Self {
        let root = Node::alloc(true);
        P::persist_range(root.cast(), std::mem::size_of::<Node>(), true);
        let t = Masstree {
            layer0: Layer { root: AtomicPtr::new(root) },
            smo_lock: parking_lot::Mutex::new(()),
            _policy: PhantomData,
        };
        P::persist_obj(&t.layer0.root, true);
        t
    }

    /// Descent within `layer` to a leaf covering (or left of) `slice`, following
    /// sibling pointers across in-flight splits. Internal-node routing reads are
    /// version-validated: internal nodes are only written under their lock during
    /// (SMO-serialized, rare) splits, and a stale permutation could otherwise pair a
    /// separator with a recycled slot's child pointer. Callers handle leaf-level
    /// move-right with their own validation.
    fn find_leaf(&self, layer: &Layer, slice: u64) -> *mut Node {
        let mut cur = layer.root.load(Ordering::Acquire);
        loop {
            pm::stats::record_node_visit();
            let node = node_ref(cur);
            if node.is_leaf() {
                return cur;
            }
            let v0 = node.lock.read_begin();
            if node.must_move_right(slice) {
                let sib = node.next.load(Ordering::Acquire);
                if !sib.is_null() {
                    cur = sib;
                    continue;
                }
            }
            let child = node.find_child(slice);
            if node.lock.read_retry(v0) {
                // A split ran while we were routing; re-read this node.
                continue;
            }
            if child == 0 {
                // Transiently empty internal node; restart from the layer root.
                cur = layer.root.load(Ordering::Acquire);
                continue;
            }
            cur = child as *mut Node;
        }
    }

    /// Lock the leaf covering `slice`, re-validating the covering range under the
    /// lock (a concurrent split may have moved it while we waited).
    fn lock_leaf<'a>(&self, layer: &Layer, slice: u64) -> (&'a Node, VersionGuard<'a>) {
        let mut ptr = self.find_leaf(layer, slice);
        loop {
            let node = node_ref(ptr);
            let guard = node.lock.lock();
            if node.must_move_right(slice) {
                let sib = node.next.load(Ordering::Acquire);
                if !sib.is_null() {
                    drop(guard);
                    ptr = sib;
                    continue;
                }
            }
            return (node, guard);
        }
    }

    /// Version-validated non-blocking lookup of `(slice, lc)` within `layer`:
    /// returns the entry's value word (record value, or `Layer` pointer for
    /// [`LAYER`] entries). The whole per-leaf read — move-right decision, rank
    /// search, value load — forms one optimistic read section; if a writer touched
    /// the leaf in between, everything is discarded and re-read. (A bare
    /// permutation-equality check would be ABA-prone: a remove + insert reusing the
    /// same slot at the same rank restores a bit-identical permutation word.)
    fn layer_lookup(&self, layer: &Layer, slice: u64, lc: u8) -> Option<u64> {
        let mut leaf = self.find_leaf(layer, slice);
        loop {
            let node = node_ref(leaf);
            let v0 = node.lock.read_begin();
            if node.must_move_right(slice) {
                let sib = node.next.load(Ordering::Acquire);
                if !sib.is_null() {
                    leaf = sib;
                    continue;
                }
            }
            let perm = node.perm_snapshot();
            let result = match node.find_rank(perm, slice, lc) {
                Ok(rank) => Some(node.vals[perm.slot(rank)].load(Ordering::Acquire)),
                Err(_) => None,
            };
            if node.lock.read_retry(v0) {
                continue;
            }
            return result;
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mut layer: *const Layer = &self.layer0;
        let mut off = 0usize;
        loop {
            let slice = keyslice(key, off);
            let lc = len_class(key, off);
            let val = self.layer_lookup(layer_ref(layer), slice, lc)?;
            if lc == LAYER {
                layer = val as *const Layer;
                off += 8;
            } else {
                return Some(val);
            }
        }
    }

    /// Build the private chain of sublayers holding `key[off..] -> value`, returning
    /// the `Layer` pointer as a value word. Nothing is visible until the caller
    /// publishes the owning entry, so plain initialisation plus one persist suffices.
    fn make_chain(&self, key: &[u8], off: usize, value: u64) -> u64 {
        let leaf = Node::alloc(true);
        let node = node_ref(leaf);
        let slice = keyslice(key, off);
        let lc = len_class(key, off);
        let val = if lc == LAYER { self.make_chain(key, off + 8, value) } else { value };
        node.keys[0].store(slice, Ordering::Relaxed);
        node.lens[0].store(lc, Ordering::Relaxed);
        node.vals[0].store(val, Ordering::Relaxed);
        node.perm.store(Perm::identity(1).0, Ordering::Relaxed);
        P::persist_range(leaf.cast(), std::mem::size_of::<Node>(), false);
        let layer = pm::alloc::pm_box(Layer { root: AtomicPtr::new(leaf) });
        P::persist_obj(layer, true);
        layer as u64
    }

    /// Insert `key -> value`. Returns `true` if the key was newly inserted, `false`
    /// if it already existed (its value is overwritten in place).
    pub fn insert(&self, key: &[u8], value: u64) -> bool {
        let mut layer: *const Layer = &self.layer0;
        let mut off = 0usize;
        loop {
            match self.layer_insert(layer_ref(layer), key, off, value) {
                LayerStep::Done(newly) => return newly,
                LayerStep::Descend(sub) => {
                    layer = sub;
                    off += 8;
                }
            }
        }
    }

    /// Insert within one layer: in-place update, descent, one-store commit, or split.
    fn layer_insert(&self, layer: &Layer, key: &[u8], off: usize, value: u64) -> LayerStep {
        let slice = keyslice(key, off);
        let lc = len_class(key, off);
        loop {
            let (node, guard) = self.lock_leaf(layer, slice);
            let perm = node.perm_snapshot();
            match node.find_rank(perm, slice, lc) {
                Ok(rank) => {
                    let slot = perm.slot(rank);
                    let val = node.vals[slot].load(Ordering::Acquire);
                    if lc == LAYER {
                        drop(guard);
                        return LayerStep::Descend(val as *const Layer);
                    }
                    // Existing terminal entry: in-place value overwrite, committed by
                    // one atomic store.
                    node.vals[slot].store(value, Ordering::Release);
                    P::mark_dirty_obj(&node.vals[slot]);
                    P::persist_obj(&node.vals[slot], true);
                    P::crash_site("masstree.update.committed");
                    return LayerStep::Done(false);
                }
                Err(rank) => {
                    if perm.count() < WIDTH {
                        let val =
                            if lc == LAYER { self.make_chain(key, off + 8, value) } else { value };
                        publish_entry::<P>(
                            node,
                            perm,
                            rank,
                            slice,
                            lc,
                            val,
                            ("masstree.insert.slot_written", "masstree.insert.committed"),
                        );
                        return LayerStep::Done(true);
                    }
                    // Leaf full: retry the whole descent under the SMO lock so at
                    // most one structure modification is in flight, then split.
                    drop(guard);
                    let smo = self.smo_lock.lock();
                    let (node, guard) = self.lock_leaf(layer, slice);
                    let perm = node.perm_snapshot();
                    match node.find_rank(perm, slice, lc) {
                        Ok(_) => {
                            // A concurrent writer got there first; release the SMO
                            // lock and redo the non-SMO path.
                            drop(guard);
                            drop(smo);
                            continue;
                        }
                        Err(rank) => {
                            let val = if lc == LAYER {
                                self.make_chain(key, off + 8, value)
                            } else {
                                value
                            };
                            if perm.count() < WIDTH {
                                publish_entry::<P>(
                                    node,
                                    perm,
                                    rank,
                                    slice,
                                    lc,
                                    val,
                                    ("masstree.insert.slot_written", "masstree.insert.committed"),
                                );
                            } else {
                                self.split_leaf_and_insert(layer, node, slice, lc, val);
                            }
                            drop(guard);
                            drop(smo);
                            return LayerStep::Done(true);
                        }
                    }
                }
            }
        }
    }

    /// Split the full locked leaf and insert the pending `(slice, lc) -> val` entry.
    /// Called with the leaf lock and the SMO lock held.
    fn split_leaf_and_insert(&self, layer: &Layer, node: &Node, slice: u64, lc: u8, val: u64) {
        let perm = node.perm_snapshot();
        let count = perm.count();
        debug_assert_eq!(count, WIDTH);
        let key_at = |rank: usize| node.keys[perm.slot(rank)].load(Ordering::Acquire);
        // Pick a split boundary that never divides a run of equal slices, so the
        // separator is a pure slice (at most 10 length classes share a slice, so a
        // boundary always exists in a full leaf).
        let mut b = count / 2;
        while b < count && key_at(b) == key_at(b - 1) {
            b += 1;
        }
        if b == count {
            b = count / 2;
            while b > 1 && key_at(b - 1) == key_at(b) {
                b -= 1;
            }
        }
        debug_assert!(b > 0 && b < count && key_at(b) != key_at(b - 1));
        let split_slice = key_at(b);

        // Build the right sibling privately: upper half plus, if it belongs there,
        // the pending entry.
        let right_ptr = Node::alloc(true);
        let right = node_ref(right_ptr);
        let mut rcount = 0usize;
        for rank in b..count {
            let s = perm.slot(rank);
            right.keys[rcount].store(node.keys[s].load(Ordering::Acquire), Ordering::Relaxed);
            right.lens[rcount].store(node.lens[s].load(Ordering::Acquire), Ordering::Relaxed);
            right.vals[rcount].store(node.vals[s].load(Ordering::Acquire), Ordering::Relaxed);
            rcount += 1;
        }
        if slice >= split_slice {
            // Splice the pending entry into the private sorted array.
            let mut pos = rcount;
            for i in 0..rcount {
                let k =
                    (right.keys[i].load(Ordering::Relaxed), right.lens[i].load(Ordering::Relaxed));
                if k > (slice, lc) {
                    pos = i;
                    break;
                }
            }
            let mut i = rcount;
            while i > pos {
                right.keys[i].store(right.keys[i - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                right.lens[i].store(right.lens[i - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                right.vals[i].store(right.vals[i - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                i -= 1;
            }
            right.keys[pos].store(slice, Ordering::Relaxed);
            right.lens[pos].store(lc, Ordering::Relaxed);
            right.vals[pos].store(val, Ordering::Relaxed);
            rcount += 1;
        }
        right.perm.store(Perm::identity(rcount).0, Ordering::Relaxed);
        right.next.store(node.next.load(Ordering::Acquire), Ordering::Relaxed);
        right.high.store(node.high.load(Ordering::Acquire), Ordering::Relaxed);
        P::persist_range(right_ptr.cast(), std::mem::size_of::<Node>(), true);
        P::crash_site("masstree.split.sibling_persisted");

        // Ordered atomic steps of the SMO (Condition #3): link, bound, truncate.
        node.next.store(right_ptr, Ordering::Release);
        P::mark_dirty_obj(&node.next);
        P::persist_obj(&node.next, true);
        P::crash_site("masstree.split.sibling_linked");
        node.high.store(split_slice, Ordering::Release);
        P::mark_dirty_obj(&node.high);
        P::persist_obj(&node.high, true);
        P::crash_site("masstree.split.high_set");
        node.perm.store(perm.truncate(b).0, Ordering::Release);
        P::mark_dirty_obj(&node.perm);
        P::persist_obj(&node.perm, true);
        P::crash_site("masstree.split.left_truncated");
        obs::event::emit("masstree.smo", "leaf_split", split_slice, right_ptr as u64);

        // A pending entry belonging to the lower half goes in through the normal
        // one-store commit (the leaf now has free slots).
        if slice < split_slice {
            let p2 = node.perm_snapshot();
            let rank = node
                .find_rank(p2, slice, lc)
                .expect_err("pending key cannot exist in a leaf we just split");
            publish_entry::<P>(
                node,
                p2,
                rank,
                slice,
                lc,
                val,
                ("masstree.insert.slot_written", "masstree.insert.committed"),
            );
        }

        let left_ptr = node as *const Node as *mut Node;
        self.insert_into_parent(layer, left_ptr, split_slice, right_ptr);
    }

    /// Insert the separator `(split_slice -> right)` into the parent of `left`,
    /// splitting parents upward as needed. Called with the SMO lock held.
    fn insert_into_parent(
        &self,
        layer: &Layer,
        left: *mut Node,
        split_slice: u64,
        right: *mut Node,
    ) {
        if layer.root.load(Ordering::Acquire) == left {
            // Root split: build the new root privately, then publish it with one
            // atomic store of the layer's root pointer.
            let new_root_ptr = Node::alloc(false);
            let new_root = node_ref(new_root_ptr);
            new_root.leftmost.store(left as u64, Ordering::Relaxed);
            new_root.keys[0].store(split_slice, Ordering::Relaxed);
            new_root.vals[0].store(right as u64, Ordering::Relaxed);
            new_root.perm.store(Perm::identity(1).0, Ordering::Relaxed);
            P::persist_range(new_root_ptr.cast(), std::mem::size_of::<Node>(), true);
            P::crash_site("masstree.root_split.new_root_persisted");
            layer.root.store(new_root_ptr, Ordering::Release);
            P::mark_dirty_obj(&layer.root);
            P::persist_obj(&layer.root, true);
            P::crash_site("masstree.root_split.committed");
            obs::event::emit("masstree.smo", "root_split", split_slice, new_root_ptr as u64);
            return;
        }
        let Some(parent_ptr) = self.find_parent(layer, left, split_slice) else {
            // The grandparent link of an earlier split never completed before a
            // crash; the sibling chain keeps every key reachable (B-link), so the
            // split is left for recovery to finish.
            return;
        };
        let parent = node_ref(parent_ptr);
        let guard = parent.lock.lock();
        let perm = parent.perm_snapshot();
        if perm.count() < WIDTH {
            let rank = parent
                .find_rank(perm, split_slice, 0)
                .expect_err("separator being inserted cannot already exist");
            publish_entry::<P>(
                parent,
                perm,
                rank,
                split_slice,
                0,
                right as u64,
                ("masstree.parent.slot_written", "masstree.parent.committed"),
            );
            drop(guard);
            return;
        }
        self.split_internal_and_insert(layer, parent, split_slice, right as u64);
        drop(guard);
    }

    /// Split the full locked internal node `parent` and route the pending separator
    /// into the correct half; the middle separator moves up. SMO lock held.
    fn split_internal_and_insert(&self, layer: &Layer, parent: &Node, slice: u64, child: u64) {
        let perm = parent.perm_snapshot();
        let count = perm.count();
        let mid = count / 2;
        let up_slot = perm.slot(mid);
        let up_slice = parent.keys[up_slot].load(Ordering::Acquire);

        let right_ptr = Node::alloc(false);
        let right = node_ref(right_ptr);
        // The promoted separator's child becomes the right node's leftmost child.
        right.leftmost.store(parent.vals[up_slot].load(Ordering::Acquire), Ordering::Relaxed);
        for (j, rank) in (mid + 1..count).enumerate() {
            let s = perm.slot(rank);
            right.keys[j].store(parent.keys[s].load(Ordering::Acquire), Ordering::Relaxed);
            right.vals[j].store(parent.vals[s].load(Ordering::Acquire), Ordering::Relaxed);
        }
        right.perm.store(Perm::identity(count - mid - 1).0, Ordering::Relaxed);
        right.next.store(parent.next.load(Ordering::Acquire), Ordering::Relaxed);
        right.high.store(parent.high.load(Ordering::Acquire), Ordering::Relaxed);
        P::persist_range(right_ptr.cast(), std::mem::size_of::<Node>(), true);
        P::crash_site("masstree.parent_split.sibling_persisted");

        parent.next.store(right_ptr, Ordering::Release);
        P::mark_dirty_obj(&parent.next);
        P::persist_obj(&parent.next, true);
        P::crash_site("masstree.parent_split.sibling_linked");
        parent.high.store(up_slice, Ordering::Release);
        P::mark_dirty_obj(&parent.high);
        P::persist_obj(&parent.high, true);
        // Truncate *excluding* the promoted separator.
        parent.perm.store(perm.truncate(mid).0, Ordering::Release);
        P::mark_dirty_obj(&parent.perm);
        P::persist_obj(&parent.perm, true);
        P::crash_site("masstree.parent_split.left_truncated");
        obs::event::emit("masstree.smo", "parent_split", up_slice, right_ptr as u64);

        // Route the pending separator into the half that now covers it.
        let target = if slice < up_slice { parent } else { right };
        let p2 = target.perm_snapshot();
        let rank = target
            .find_rank(p2, slice, 0)
            .expect_err("separator being inserted cannot already exist");
        publish_entry::<P>(
            target,
            p2,
            rank,
            slice,
            0,
            child,
            ("masstree.parent.slot_written", "masstree.parent.committed"),
        );

        let left_ptr = parent as *const Node as *mut Node;
        self.insert_into_parent(layer, left_ptr, up_slice, right_ptr);
    }

    /// Locate the internal node holding (or that should hold) the routing entry for
    /// `left`. Returns `None` if `left` is only reachable through sibling pointers
    /// (possible after a crash-interrupted split).
    fn find_parent(&self, layer: &Layer, left: *mut Node, split_slice: u64) -> Option<*mut Node> {
        let mut cur = layer.root.load(Ordering::Acquire);
        let mut parent: Option<*mut Node> = None;
        loop {
            if cur == left {
                return parent;
            }
            let node = node_ref(cur);
            if node.is_leaf() {
                return None;
            }
            if node.must_move_right(split_slice) {
                let sib = node.next.load(Ordering::Acquire);
                if !sib.is_null() {
                    cur = sib;
                    continue;
                }
            }
            parent = Some(cur);
            let child = node.find_child(split_slice);
            if child == 0 {
                return None;
            }
            cur = child as *mut Node;
        }
    }

    /// Conditional update of an existing key (linearizable: presence check and value
    /// store happen under the final layer's leaf lock). Returns `false` without
    /// inserting if the key is absent.
    pub fn update(&self, key: &[u8], value: u64) -> bool {
        let mut layer: *const Layer = &self.layer0;
        let mut off = 0usize;
        loop {
            let slice = keyslice(key, off);
            let lc = len_class(key, off);
            let (node, guard) = self.lock_leaf(layer_ref(layer), slice);
            let perm = node.perm_snapshot();
            match node.find_rank(perm, slice, lc) {
                Ok(rank) => {
                    let slot = perm.slot(rank);
                    let val = node.vals[slot].load(Ordering::Acquire);
                    if lc == LAYER {
                        drop(guard);
                        layer = val as *const Layer;
                        off += 8;
                        continue;
                    }
                    node.vals[slot].store(value, Ordering::Release);
                    P::mark_dirty_obj(&node.vals[slot]);
                    P::persist_obj(&node.vals[slot], true);
                    P::crash_site("masstree.update.committed");
                    return true;
                }
                Err(_) => return false,
            }
        }
    }

    /// Remove `key`. Returns `true` if it was present. The entry is retired with a
    /// single atomic store of the permutation; emptied sublayers are left in place
    /// (they answer lookups correctly and are reused by later inserts).
    pub fn remove(&self, key: &[u8]) -> bool {
        let mut layer: *const Layer = &self.layer0;
        let mut off = 0usize;
        loop {
            let slice = keyslice(key, off);
            let lc = len_class(key, off);
            let (node, guard) = self.lock_leaf(layer_ref(layer), slice);
            let perm = node.perm_snapshot();
            match node.find_rank(perm, slice, lc) {
                Ok(rank) => {
                    if lc == LAYER {
                        let sub = node.vals[perm.slot(rank)].load(Ordering::Acquire);
                        drop(guard);
                        layer = sub as *const Layer;
                        off += 8;
                        continue;
                    }
                    node.perm.store(perm.remove(rank).0, Ordering::Release);
                    P::mark_dirty_obj(&node.perm);
                    P::persist_obj(&node.perm, true);
                    P::crash_site("masstree.remove.committed");
                    return true;
                }
                Err(_) => return false,
            }
        }
    }

    /// Range scan: up to `count` pairs with keys `>= start`, in ascending byte order,
    /// descending into sublayers and following leaf sibling chains.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::with_capacity(count.min(1024));
        self.scan_into(start, count, &mut out);
        out
    }

    /// [`Masstree::scan`] into a caller-provided buffer: appends up to `count`
    /// pairs with key `>= start` (ascending) to `out` without clearing it, so
    /// cursor callers can stream batches through one reused allocation.
    pub fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<(Vec<u8>, u64)>) {
        if count == 0 {
            return;
        }
        let target = out.len().saturating_add(count);
        let mut prefix = Vec::new();
        self.scan_layer(&self.layer0, &mut prefix, Some(start), target, out);
    }

    /// Collect entries of one layer (and its sublayers) into `out`.
    ///
    /// `start` is the remainder of the start key relative to this layer (`None`
    /// collects from the beginning). Entries at or past a (possibly crash-torn)
    /// split boundary are skipped — their home is the right sibling — and an entry
    /// is dropped if it does not sort after the last collected key, which suppresses
    /// the transient duplicates a torn split leaves behind.
    fn scan_layer(
        &self,
        layer: &Layer,
        prefix: &mut Vec<u8>,
        start: Option<&[u8]>,
        count: usize,
        out: &mut Vec<(Vec<u8>, u64)>,
    ) {
        let (s_slice, s_lc) = match start {
            Some(rem) => (keyslice(rem, 0), len_class(rem, 0)),
            None => (0, 0),
        };
        let mut cur = self.find_leaf(layer, s_slice);
        let mut entries: Vec<(u64, u8, u64)> = Vec::with_capacity(WIDTH);
        while !cur.is_null() && out.len() < count {
            let node = node_ref(cur);
            pm::stats::record_node_visit();
            // Take a version-validated snapshot of the leaf's published entries (the
            // same optimistic read section `layer_lookup` uses; a bare permutation
            // check would be ABA-prone under slot recycling), then process the
            // consistent snapshot outside the read section — sublayer recursion can
            // be slow and must not keep the validation window open.
            let mut high;
            loop {
                entries.clear();
                let v0 = node.lock.read_begin();
                let perm = node.perm_snapshot();
                high = node.high.load(Ordering::Acquire);
                for rank in 0..perm.count() {
                    let slot = perm.slot(rank);
                    entries.push((
                        node.keys[slot].load(Ordering::Acquire),
                        node.lens[slot].load(Ordering::Acquire),
                        node.vals[slot].load(Ordering::Acquire),
                    ));
                }
                if !node.lock.read_retry(v0) {
                    break;
                }
            }
            for &(k, l, v) in &entries {
                if out.len() >= count {
                    return;
                }
                if high != 0 && k >= high {
                    // Moved (or mid-move) to the right sibling; collected there.
                    break;
                }
                let bound = match start {
                    Some(_) => (k, l).cmp(&(s_slice, s_lc)),
                    None => std::cmp::Ordering::Greater,
                };
                if bound == std::cmp::Ordering::Less {
                    continue;
                }
                if l == LAYER {
                    let sub = layer_ref(v as *const Layer);
                    let substart = if bound == std::cmp::Ordering::Equal {
                        // Same slice and the start key also continues: constrain the
                        // sublayer by the rest of the start key.
                        start.map(|rem| &rem[8..])
                    } else {
                        None
                    };
                    prefix.extend_from_slice(&k.to_be_bytes());
                    self.scan_layer(sub, prefix, substart, count, out);
                    prefix.truncate(prefix.len() - 8);
                } else {
                    let mut built = Vec::with_capacity(prefix.len() + l as usize);
                    built.extend_from_slice(prefix);
                    built.extend_from_slice(&k.to_be_bytes()[..l as usize]);
                    // Duplicate suppression across torn/in-flight splits.
                    if out.last().is_some_and(|(last, _)| *last >= built) {
                        continue;
                    }
                    out.push((built, v));
                }
            }
            cur = node.next.load(Ordering::Acquire);
        }
    }

    /// Post-crash recovery: the RECIPE restart hook plus the Condition #3 helper.
    ///
    /// Re-initialises every node lock, completes crash-torn splits (derives a missing
    /// high key from the linked sibling's minimum slice, truncates entries the split
    /// had already copied right), re-roots layers whose root split never committed,
    /// and recurses into every sublayer. Must run while no other threads operate on
    /// the tree, as a restart would.
    pub fn recover(&self) {
        self.recover_layer(&self.layer0);
    }

    fn recover_layer(&self, layer: &Layer) {
        self.fix_levels(layer.root.load(Ordering::Acquire));
        // If the layer root has siblings, a root split never committed (or the new
        // root itself was lost): rebuild a root over the chain. Highs are all set by
        // the fix pass, so the chain yields the separators directly.
        loop {
            let root_ptr = layer.root.load(Ordering::Acquire);
            let root = node_ref(root_ptr);
            if root.next.load(Ordering::Acquire).is_null() {
                break;
            }
            let new_root_ptr = Node::alloc(false);
            let new_root = node_ref(new_root_ptr);
            new_root.leftmost.store(root_ptr as u64, Ordering::Relaxed);
            let mut n = root_ptr;
            let mut count = 0usize;
            while count < WIDTH {
                let node = node_ref(n);
                let sib = node.next.load(Ordering::Acquire);
                if sib.is_null() {
                    break;
                }
                new_root.keys[count].store(node.high.load(Ordering::Acquire), Ordering::Relaxed);
                new_root.vals[count].store(sib as u64, Ordering::Relaxed);
                count += 1;
                n = sib;
            }
            new_root.perm.store(Perm::identity(count).0, Ordering::Relaxed);
            P::persist_range(new_root_ptr.cast(), std::mem::size_of::<Node>(), true);
            layer.root.store(new_root_ptr, Ordering::Release);
            P::mark_dirty_obj(&layer.root);
            P::persist_obj(&layer.root, true);
            // A chain longer than WIDTH keeps its tail reachable through the last
            // child's sibling pointers; the loop then runs again only if the new
            // root itself has siblings (it never does).
        }
        // Finish any split whose parent link a crash cut off: re-insert the missing
        // separators so siblings are routed from their parents again (until then
        // they are reachable only via B-link move-right).
        while self.reattach_orphan(layer) {}
        // Recurse into sublayers from the leaf level.
        let leaf_head = leftmost_leaf(layer.root.load(Ordering::Acquire));
        for_each_sublayer(leaf_head, |sub| self.recover_layer(sub));
    }

    /// Find one node that no parent routes to — a split whose `insert_into_parent`
    /// never completed before a crash — and re-insert its separator through the
    /// ordinary write-path helper. Returns `true` if a reattachment happened (the
    /// caller loops until none remain). Runs single-threaded, after `fix_levels` has
    /// set every high key and the layer root has been re-rooted.
    fn reattach_orphan(&self, layer: &Layer) -> bool {
        let mut parent_head = layer.root.load(Ordering::Acquire);
        loop {
            if node_ref(parent_head).is_leaf() {
                return false;
            }
            let (routed, seps) = routed_by_level(parent_head);
            // Walk the child-level chain looking for an unrouted sibling.
            let child_head = node_ref(parent_head).leftmost.load(Ordering::Acquire) as *mut Node;
            let mut prev = child_head;
            loop {
                let c = node_ref(prev).next.load(Ordering::Acquire);
                if c.is_null() {
                    break;
                }
                if !routed.contains(&(c as u64)) {
                    // `prev`'s high key is exactly the separator the torn split never
                    // published (fix_levels guarantees it is set).
                    let sep = node_ref(prev).high.load(Ordering::Acquire);
                    if sep != 0 && !seps.contains(&sep) {
                        self.insert_into_parent(layer, prev, sep, c);
                        return true;
                    }
                }
                prev = c;
            }
            parent_head = child_head;
        }
    }

    /// Recovery fix pass, visiting every node exactly once: each tree level is a
    /// sibling chain starting at the leftmost spine, so walking level by level covers
    /// the whole layer — including nodes whose parent link a crash cut off — in
    /// linear time. Each node is force-unlocked and any torn split is completed.
    fn fix_levels(&self, root: *mut Node) {
        let mut level_head = root;
        loop {
            let mut cur = level_head;
            while !cur.is_null() {
                let node = node_ref(cur);
                node.lock.force_unlock();
                let next = node.next.load(Ordering::Acquire);
                if !next.is_null() && node.high.load(Ordering::Acquire) == 0 {
                    // Crash between "sibling linked" and "high key set": the
                    // sibling's minimum slice is exactly the split boundary. This is
                    // the helper built from the write path's own split code.
                    let sep = node_ref(next).min_slice();
                    node.high.store(sep, Ordering::Release);
                    P::mark_dirty_obj(&node.high);
                    P::persist_obj(&node.high, true);
                }
                let high = node.high.load(Ordering::Acquire);
                if high != 0 {
                    // Crash before "left truncated": retire every entry the split
                    // had already copied to the sibling with one permutation store.
                    let perm = node.perm_snapshot();
                    let mut keep = perm.count();
                    for rank in 0..perm.count() {
                        if node.keys[perm.slot(rank)].load(Ordering::Acquire) >= high {
                            keep = rank;
                            break;
                        }
                    }
                    if keep != perm.count() {
                        node.perm.store(perm.truncate(keep).0, Ordering::Release);
                        P::mark_dirty_obj(&node.perm);
                        P::persist_obj(&node.perm, true);
                    }
                }
                cur = next;
            }
            let head = node_ref(level_head);
            if head.is_leaf() {
                return;
            }
            level_head = head.leftmost.load(Ordering::Acquire) as *mut Node;
        }
    }

    /// Diagnostic: how many nodes across every layer are reachable only through
    /// sibling pointers — splits whose parent link never completed. Zero on a fully
    /// consistent tree; [`Masstree::recover`] restores it to zero. Single-threaded
    /// use only, like `recover` (crash-recovery tests and diagnostics).
    #[must_use]
    pub fn unrouted_siblings(&self) -> usize {
        self.unrouted_in_layer(&self.layer0)
    }

    fn unrouted_in_layer(&self, layer: &Layer) -> usize {
        let mut orphans = 0usize;
        let root = layer.root.load(Ordering::Acquire);
        // Siblings of the root itself (an uncommitted root split).
        let mut r = node_ref(root).next.load(Ordering::Acquire);
        while !r.is_null() {
            orphans += 1;
            r = node_ref(r).next.load(Ordering::Acquire);
        }
        let mut parent_head = root;
        while !node_ref(parent_head).is_leaf() {
            let (routed, _seps) = routed_by_level(parent_head);
            let child_head = node_ref(parent_head).leftmost.load(Ordering::Acquire) as *mut Node;
            let mut c = node_ref(child_head).next.load(Ordering::Acquire);
            while !c.is_null() {
                if !routed.contains(&(c as u64)) {
                    orphans += 1;
                }
                c = node_ref(c).next.load(Ordering::Acquire);
            }
            parent_head = child_head;
        }
        // Recurse into sublayers from the leaf chain (`parent_head` is now the
        // leftmost leaf).
        for_each_sublayer(parent_head, |sub| orphans += self.unrouted_in_layer(sub));
        orphans
    }

    /// Number of stored keys (walks every layer; tests and diagnostics only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.scan(&[], usize::MAX).len()
    }

    /// Whether the tree holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let mut out = Vec::new();
        self.scan_layer(&self.layer0, &mut Vec::new(), None, 1, &mut out);
        out.is_empty()
    }
}
