//! Permutation-ordered B+-tree nodes for Masstree layers.
//!
//! Masstree's signature node design (Mao et al., EuroSys '12) keeps leaf entries in
//! *insertion* order and encodes their *sorted* order in a single 64-bit permutation
//! word: nibble 0 holds the entry count and nibble `r + 1` holds the slot index of the
//! entry with sorted rank `r`. A writer prepares a free slot off to the side and makes
//! the entry visible with one atomic store of the new permutation — which is exactly
//! the single-atomic-store commit point RECIPE's Condition #1 conversion asks of
//! non-SMO writes, so P-Masstree only adds a flush + fence after the slot write and
//! after the permutation store.
//!
//! Within a layer, entries are ordered by the pair `(slice, length class)`: the 8-byte
//! big-endian key slice first, then the number of key bytes the slice actually covers
//! (0..=8), with [`LAYER`] (= 9) classifying keys that extend beyond the slice and
//! therefore continue in a next-layer subtree. Because slices are zero-padded, two
//! distinct keys (e.g. `"ab"` and `"ab\0"`) can share a slice; the length class keeps
//! them distinct and the pair ordering is exactly the lexicographic byte order.

use recipe::lock::VersionLock;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};

/// Entries per node. 15 slot indexes fit a nibble, leaving nibble 0 for the count.
pub const WIDTH: usize = 15;

/// Length class of an entry whose key extends beyond the 8-byte slice: the remainder
/// lives in the next-layer subtree pointed to by the entry's value word.
pub const LAYER: u8 = 9;

/// A snapshot of a node's permutation word.
///
/// Nibble 0 is the number of published entries; nibble `r + 1` is the slot holding the
/// entry of sorted rank `r`. Reading the word with a single atomic load yields a
/// consistent view of which slots are published and in what order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perm(pub u64);

impl Perm {
    /// The permutation of an empty node.
    pub const EMPTY: Perm = Perm(0);

    /// The identity permutation over `n` entries (rank `r` stored in slot `r`), used
    /// for privately constructed nodes.
    #[must_use]
    pub fn identity(n: usize) -> Perm {
        debug_assert!(n <= WIDTH);
        let mut word = n as u64;
        for r in 0..n {
            word |= (r as u64) << (4 * (r + 1));
        }
        Perm(word)
    }

    /// Number of published entries.
    #[must_use]
    pub fn count(self) -> usize {
        (self.0 & 0xF) as usize
    }

    /// Slot index of the entry with sorted rank `rank`.
    #[must_use]
    pub fn slot(self, rank: usize) -> usize {
        ((self.0 >> (4 * (rank + 1))) & 0xF) as usize
    }

    /// The permutation with `slot` spliced in at sorted rank `rank`.
    #[must_use]
    pub fn insert(self, rank: usize, slot: usize) -> Perm {
        debug_assert!(self.count() < WIDTH && rank <= self.count() && slot < WIDTH);
        let shift = 4 * (rank + 1);
        let low_mask = (1u64 << shift) - 1;
        let low = self.0 & low_mask;
        let high = (self.0 & !low_mask) << 4;
        // `+ 1` bumps the count nibble (count < 15, so it cannot carry).
        Perm((high | ((slot as u64) << shift) | low) + 1)
    }

    /// The permutation with the entry at sorted rank `rank` removed.
    #[must_use]
    pub fn remove(self, rank: usize) -> Perm {
        debug_assert!(rank < self.count());
        let shift = 4 * (rank + 1);
        let low_mask = (1u64 << shift) - 1;
        let low = self.0 & low_mask;
        // Removing the top rank (nibble 15) has nothing above it to shift down.
        let high = if shift + 4 >= 64 { 0 } else { (self.0 >> (shift + 4)) << shift };
        Perm((high | low) - 1)
    }

    /// The permutation truncated to its first `n` ranks (used by splits to retire the
    /// moved upper half with a single atomic store).
    #[must_use]
    pub fn truncate(self, n: usize) -> Perm {
        debug_assert!(n <= self.count());
        if n >= WIDTH {
            return self;
        }
        let keep = (1u64 << (4 * (n + 1))) - 1;
        Perm((self.0 & keep & !0xF) | n as u64)
    }

    /// A slot not referenced by any published rank, if one exists.
    #[must_use]
    pub fn free_slot(self) -> Option<usize> {
        let mut used = 0u16;
        for r in 0..self.count() {
            used |= 1 << self.slot(r);
        }
        (0..WIDTH).find(|&s| used & (1 << s) == 0)
    }
}

/// A Masstree node: a B+-tree leaf or internal node within one trie layer.
///
/// Leaves map `(slice, length class)` pairs to values (length class 0..=8) or to
/// next-layer subtrees ([`LAYER`]); internal nodes map separator slices to children.
/// Separators are always pure slices — splits never divide a run of equal slices —
/// so routing and high keys fit a single atomic word.
pub struct Node {
    /// Writer lock (readers never take it; recovery force-unlocks it).
    pub lock: VersionLock,
    /// Leaf marker; set at allocation and never changed.
    leaf: bool,
    /// The permutation word publishing this node's entries.
    pub perm: AtomicU64,
    /// Per-slot key slices (leaf) or separator slices (internal).
    pub keys: [AtomicU64; WIDTH],
    /// Per-slot length classes (leaves only; internal nodes leave them 0).
    pub lens: [AtomicU8; WIDTH],
    /// Per-slot values: record value or `Layer` pointer (leaf), child pointer
    /// (internal).
    pub vals: [AtomicU64; WIDTH],
    /// Child covering slices below every separator (internal nodes only).
    pub leftmost: AtomicU64,
    /// Right sibling (B-link pointer).
    pub next: AtomicPtr<Node>,
    /// Exclusive upper bound of this node's slice space; 0 means unbounded.
    /// (0 can never be a real separator: a slice-0 run is at most 10 entries and
    /// therefore never the upper half of a split.)
    pub high: AtomicU64,
}

impl Node {
    /// Allocate an empty node on the PM pool. The caller must persist it before
    /// publishing a pointer to it.
    pub fn alloc(leaf: bool) -> *mut Node {
        pm::alloc::pm_box(Node {
            lock: VersionLock::new(),
            leaf,
            perm: AtomicU64::new(Perm::EMPTY.0),
            keys: std::array::from_fn(|_| AtomicU64::new(0)),
            lens: std::array::from_fn(|_| AtomicU8::new(0)),
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
            leftmost: AtomicU64::new(0),
            next: AtomicPtr::new(std::ptr::null_mut()),
            high: AtomicU64::new(0),
        })
    }

    /// Whether this node is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.leaf
    }

    /// Atomic snapshot of the permutation word.
    #[must_use]
    pub fn perm_snapshot(&self) -> Perm {
        Perm(self.perm.load(Ordering::Acquire))
    }

    /// The `(slice, length class)` pair at sorted rank `rank` of `perm`.
    #[must_use]
    pub fn entry_key(&self, perm: Perm, rank: usize) -> (u64, u8) {
        let s = perm.slot(rank);
        (self.keys[s].load(Ordering::Acquire), self.lens[s].load(Ordering::Acquire))
    }

    /// Binary outcome of a sorted search over the published entries of `perm`:
    /// `Ok(rank)` if `(slice, lc)` is present, `Err(rank)` with its insertion rank
    /// otherwise.
    pub fn find_rank(&self, perm: Perm, slice: u64, lc: u8) -> Result<usize, usize> {
        for rank in 0..perm.count() {
            match self.entry_key(perm, rank).cmp(&(slice, lc)) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => return Ok(rank),
                std::cmp::Ordering::Greater => return Err(rank),
            }
        }
        Err(perm.count())
    }

    /// Child covering `slice` (internal nodes): the last child whose separator is
    /// `<= slice`, or the leftmost child if every separator is greater.
    #[must_use]
    pub fn find_child(&self, slice: u64) -> u64 {
        let perm = self.perm_snapshot();
        let mut child = self.leftmost.load(Ordering::Acquire);
        for rank in 0..perm.count() {
            let s = perm.slot(rank);
            if self.keys[s].load(Ordering::Acquire) > slice {
                break;
            }
            let c = self.vals[s].load(Ordering::Acquire);
            if c != 0 {
                child = c;
            }
        }
        child
    }

    /// Smallest published slice (callers must ensure the node is non-empty).
    #[must_use]
    pub fn min_slice(&self) -> u64 {
        let perm = self.perm_snapshot();
        debug_assert!(perm.count() > 0);
        self.keys[perm.slot(0)].load(Ordering::Acquire)
    }

    /// Whether `slice` falls outside this node's key space, i.e. the reader or writer
    /// must follow the sibling pointer across an in-flight or crash-torn split.
    #[must_use]
    pub fn must_move_right(&self, slice: u64) -> bool {
        let high = self.high.load(Ordering::Acquire);
        high != 0 && slice >= high
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_perm_has_no_entries() {
        assert_eq!(Perm::EMPTY.count(), 0);
        assert_eq!(Perm::EMPTY.free_slot(), Some(0));
    }

    #[test]
    fn insert_keeps_rank_order_and_count() {
        // Insert slots 3, 1, 4 at ranks 0, 0, 1: sorted order becomes [1, 4, 3].
        let p = Perm::EMPTY.insert(0, 3).insert(0, 1).insert(1, 4);
        assert_eq!(p.count(), 3);
        assert_eq!((p.slot(0), p.slot(1), p.slot(2)), (1, 4, 3));
        let used: Vec<usize> = (0..p.count()).map(|r| p.slot(r)).collect();
        assert!(!used.contains(&p.free_slot().unwrap()));
    }

    #[test]
    fn remove_closes_the_rank_gap() {
        let p = Perm::EMPTY.insert(0, 2).insert(1, 5).insert(2, 7);
        let q = p.remove(1);
        assert_eq!(q.count(), 2);
        assert_eq!((q.slot(0), q.slot(1)), (2, 7));
    }

    #[test]
    fn remove_and_truncate_handle_the_top_rank() {
        let full = Perm::identity(WIDTH);
        let p = full.remove(WIDTH - 1);
        assert_eq!(p.count(), WIDTH - 1);
        for r in 0..WIDTH - 1 {
            assert_eq!(p.slot(r), r);
        }
        assert_eq!(full.truncate(WIDTH), full);
    }

    #[test]
    fn truncate_keeps_a_prefix() {
        let p = Perm::identity(10);
        let q = p.truncate(4);
        assert_eq!(q.count(), 4);
        for r in 0..4 {
            assert_eq!(q.slot(r), p.slot(r));
        }
    }

    #[test]
    fn slot_recycling_can_reproduce_the_permutation_word() {
        // The ABA case readers must survive: removing the rank-1 entry frees its
        // slot, and free_slot() hands that same slot back to the next insert at the
        // same rank — yielding a bit-identical permutation word. This is why reader
        // validation uses the node's lock version (which every writer bumps) instead
        // of comparing permutation words.
        let p = Perm::identity(3);
        let recycled_slot = p.slot(1);
        let q = p.remove(1);
        assert_eq!(q.free_slot(), Some(recycled_slot), "lowest free slot is the recycled one");
        assert_eq!(q.insert(1, recycled_slot), p, "permutation word ABAs");
    }

    #[test]
    fn full_perm_has_no_free_slot() {
        let p = Perm::identity(WIDTH);
        assert_eq!(p.count(), WIDTH);
        assert_eq!(p.free_slot(), None);
    }

    #[test]
    fn identity_round_trips_through_insert() {
        let mut p = Perm::EMPTY;
        for r in 0..WIDTH {
            p = p.insert(r, r);
        }
        assert_eq!(p, Perm::identity(WIDTH));
    }

    #[test]
    fn find_rank_orders_by_slice_then_length_class() {
        let n = Node::alloc(true);
        // SAFETY: freshly allocated, never shared.
        let node = unsafe { &*n };
        // Entries: (5, 2) < (5, LAYER) < (9, 8), published via the permutation.
        let mut perm = Perm::EMPTY;
        let entries = [(5u64, 2u8), (5, LAYER), (9, 8)];
        for (slot, (k, l)) in entries.iter().enumerate() {
            node.keys[slot].store(*k, Ordering::Release);
            node.lens[slot].store(*l, Ordering::Release);
            perm = perm.insert(slot, slot);
        }
        node.perm.store(perm.0, Ordering::Release);
        let p = node.perm_snapshot();
        assert_eq!(node.find_rank(p, 5, 2), Ok(0));
        assert_eq!(node.find_rank(p, 5, LAYER), Ok(1));
        assert_eq!(node.find_rank(p, 9, 8), Ok(2));
        assert_eq!(node.find_rank(p, 5, 4), Err(1));
        assert_eq!(node.find_rank(p, 7, 0), Err(2));
        assert_eq!(node.find_rank(p, 10, 0), Err(3));
    }

    #[test]
    fn high_key_zero_means_unbounded() {
        let n = Node::alloc(true);
        // SAFETY: freshly allocated, never shared.
        let node = unsafe { &*n };
        assert!(!node.must_move_right(u64::MAX));
        node.high.store(100, Ordering::Release);
        assert!(!node.must_move_right(99));
        assert!(node.must_move_right(100));
        assert!(node.must_move_right(101));
    }
}
