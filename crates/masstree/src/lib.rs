//! # Masstree — a B+ tree of tries, and its RECIPE conversion (P-Masstree)
//!
//! Masstree (Mao et al., EuroSys '12) is the concurrent ordered index the RECIPE
//! paper's Table 1 classifies as "B+ Tree & Trie": a trie over 8-byte key slices in
//! which every trie node is itself a B+ tree, so arbitrary-length byte-string keys
//! get radix-style sharing of long common prefixes with B+-tree fanout within each
//! layer. Readers are non-blocking (permutation-snapshot validated, never retrying
//! into locks); writers lock exactly one leaf and commit non-SMO writes with a single
//! atomic store of the leaf's permutation word.
//!
//! The RECIPE conversion (§6, 200 LOC of 2.2K in the paper's C++ port) is
//! Condition #1 for non-SMO writes — flush + fence after the slot write and the
//! permutation store — and Condition #3 for splits: the multi-step SMO can be cut by
//! a crash, readers detect and tolerate the torn state (B-link move-right, duplicate
//! suppression) but do not fix it, and a helper built from the write path completes
//! the split on [`recipe::index::Recoverable::recover`].
//!
//! `Masstree<Dram>` is the original DRAM index; `Masstree<Pmem>` is P-Masstree.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod node;
pub mod tree;

pub use tree::{Layer, Masstree};

/// Every crash site this crate can emit, for the §5 per-site exhaustive sweep.
pub const CRASH_SITES: &[&str] = &[
    "masstree.insert.slot_written",
    "masstree.insert.committed",
    "masstree.update.committed",
    "masstree.remove.committed",
    "masstree.split.sibling_persisted",
    "masstree.split.sibling_linked",
    "masstree.split.high_set",
    "masstree.split.left_truncated",
    "masstree.root_split.new_root_persisted",
    "masstree.root_split.committed",
    "masstree.parent_split.sibling_persisted",
    "masstree.parent_split.sibling_linked",
    "masstree.parent_split.left_truncated",
    "masstree.parent.slot_written",
    "masstree.parent.committed",
];

use recipe::index::Recoverable;
use recipe::persist::{Dram, PersistMode, Pmem};
use recipe::session::{Capabilities, Index, OpError, OpResult};

/// The persistent Masstree (the paper's P-Masstree).
pub type PMasstree = Masstree<Pmem>;
/// Masstree with persistence compiled out (the original DRAM index).
pub type DramMasstree = Masstree<Dram>;

/// What this index supports. `linearizable_update` is `true`: the presence
/// check and the value store happen under the final layer's leaf lock.
pub const CAPS: Capabilities = Capabilities::ordered_index(true);

impl<P: PersistMode> Index for Masstree<P> {
    fn exec_insert(&self, key: &[u8], value: u64) -> Result<OpResult, OpError> {
        if Masstree::insert(self, key, value) {
            Ok(OpResult::Inserted)
        } else {
            Ok(OpResult::Updated)
        }
    }

    fn exec_update(&self, key: &[u8], value: u64) -> Result<OpResult, OpError> {
        // Linearizable conditional update: presence check and value store happen
        // under the final layer's leaf lock.
        if Masstree::update(self, key, value) {
            Ok(OpResult::Updated)
        } else {
            Err(OpError::NotFound)
        }
    }

    fn exec_get(&self, key: &[u8]) -> Option<u64> {
        Masstree::get(self, key)
    }

    fn exec_remove(&self, key: &[u8]) -> Result<OpResult, OpError> {
        if Masstree::remove(self, key) {
            Ok(OpResult::Removed)
        } else {
            Err(OpError::NotFound)
        }
    }

    fn exec_scan_chunk(&self, start: &[u8], max: usize, out: &mut Vec<(Vec<u8>, u64)>) {
        Masstree::scan_into(self, start, max, out);
    }

    fn capabilities(&self) -> Capabilities {
        CAPS
    }

    fn index_name(&self) -> String {
        if P::PERSISTENT {
            "P-Masstree".into()
        } else {
            "Masstree".into()
        }
    }
}

impl<P: PersistMode> Recoverable for Masstree<P> {
    fn recover(&self) {
        Masstree::recover(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe::key::u64_key;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn insert_get_integer_keys() {
        let t: PMasstree = Masstree::new();
        for i in 0..20_000u64 {
            assert!(t.insert(&u64_key(i), i * 2), "insert {i}");
        }
        for i in 0..20_000u64 {
            assert_eq!(t.get(&u64_key(i)), Some(i * 2), "get {i}");
        }
        assert_eq!(t.get(&u64_key(20_000)), None);
        assert_eq!(t.len(), 20_000);
    }

    #[test]
    fn insert_is_upsert_and_update_is_conditional() {
        let t: PMasstree = Masstree::new();
        assert!(t.insert(&u64_key(7), 1));
        assert!(!t.insert(&u64_key(7), 2));
        assert_eq!(t.get(&u64_key(7)), Some(2));
        assert!(t.update(&u64_key(7), 3));
        assert_eq!(t.get(&u64_key(7)), Some(3));
        assert!(!t.update(&u64_key(8), 9));
        assert_eq!(t.get(&u64_key(8)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn layer_descent_past_the_slice_boundary() {
        let t: PMasstree = Masstree::new();
        // All keys share the first 8 bytes, so every key after the first creates or
        // descends into a second (and third) trie layer.
        let long = |suffix: &str| format!("prefix00{suffix}").into_bytes();
        let keys = [
            long(""),                 // terminates in layer 0 (lc = 8)
            long("a"),                // layer 1, lc = 1
            long("ab"),               // layer 1, lc = 2
            long("abcdefgh"),         // layer 1, lc = 8
            long("abcdefghijklmnop"), // layer 2
            long("zzzzzzzzz"),        // layer 1 -> layer 2, different branch
        ];
        for (i, k) in keys.iter().enumerate() {
            assert!(t.insert(k, i as u64), "insert {i}");
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "get {i}");
        }
        // Prefix relationships must stay distinct across the boundary.
        assert_eq!(t.get(b"prefix00"), Some(0));
        assert_eq!(t.get(b"prefix00abcdefgh"), Some(3));
        assert_eq!(t.get(b"prefix00abcdefghijklmnop"), Some(4));
        assert_eq!(t.get(b"prefix00abcdefghijklmno"), None);
        assert_eq!(t.get(b"prefix0"), None);
        // Zero-padding must not conflate "ab" with "ab\0".
        assert!(t.insert(b"prefix00ab\0", 99));
        assert_eq!(t.get(&long("ab")), Some(2));
        assert_eq!(t.get(b"prefix00ab\0"), Some(99));
    }

    #[test]
    fn string_keys_round_trip() {
        let t: PMasstree = Masstree::new();
        let mut model = BTreeMap::new();
        for i in 0..5_000u64 {
            let key = format!("user{:020}", i * 37 % 5_000);
            let newly = model.insert(key.clone().into_bytes(), i).is_none();
            assert_eq!(t.insert(key.as_bytes(), i), newly, "key {key}");
        }
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(*v));
        }
    }

    #[test]
    fn remove_keeps_other_keys() {
        let t: PMasstree = Masstree::new();
        for i in 0..2_000u64 {
            t.insert(&u64_key(i), i);
        }
        for i in (0..2_000u64).step_by(3) {
            assert!(t.remove(&u64_key(i)));
            assert!(!t.remove(&u64_key(i)));
        }
        for i in 0..2_000u64 {
            let expect = if i % 3 == 0 { None } else { Some(i) };
            assert_eq!(t.get(&u64_key(i)), expect, "key {i}");
        }
    }

    #[test]
    fn cross_layer_scan_is_sorted() {
        let t: PMasstree = Masstree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        // Mixed-length keys exercising layer 0 terminals, sublayers and zero-padding
        // collisions in one tree.
        let mut put = |k: &[u8], v: u64| {
            t.insert(k, v);
            model.insert(k.to_vec(), v);
        };
        for i in 0..600u64 {
            put(&u64_key(i * 7), i);
            put(format!("sess{:012}", i * 11 % 500).as_bytes(), i);
            put(format!("sess{:012}/attr{}", i % 50, i % 7).as_bytes(), i);
        }
        put(b"sess", 1);
        put(b"sess\0", 2);
        put(b"sess\0\0\0\0\0\0\0\0", 3);
        for start in [&b""[..], b"sess", b"sess\0", b"sess000000000250", b"zzz", &u64_key(2100)] {
            for count in [1usize, 17, 1000] {
                let got = t.scan(start, count);
                let want: Vec<(Vec<u8>, u64)> = model
                    .range(start.to_vec()..)
                    .take(count)
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                assert_eq!(got, want, "scan from {:?} x{count}", String::from_utf8_lossy(start));
            }
        }
    }

    #[test]
    fn concurrent_inserts_keep_all_keys() {
        let t: Arc<PMasstree> = Arc::new(Masstree::new());
        let threads = 8u64;
        let per = 3_000u64;
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for i in 0..per {
                        let k = tid * per + i;
                        assert!(t.insert(&u64_key(k), k));
                    }
                });
            }
        });
        for k in 0..threads * per {
            assert_eq!(t.get(&u64_key(k)), Some(k), "key {k} lost");
        }
        assert_eq!(t.len(), (threads * per) as usize);
    }

    #[test]
    fn concurrent_readers_and_scanners_during_writes() {
        let t: Arc<PMasstree> = Arc::new(Masstree::new());
        for i in 0..5_000u64 {
            t.insert(&u64_key(i), i);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for r in 0..4u64 {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut i = r;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let k = i % 5_000;
                        assert_eq!(t.get(&u64_key(k)), Some(k));
                        let got = t.scan(&u64_key(k), 20);
                        assert!(!got.is_empty());
                        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
                        i += 1;
                    }
                });
            }
            for w in 0..4u64 {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for i in 0..3_000u64 {
                        let k = 10_000 + w * 3_000 + i;
                        t.insert(&u64_key(k), k);
                    }
                });
            }
            // Writers finish on their own; then stop the readers.
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        for w in 0..4u64 {
            for i in 0..3_000u64 {
                let k = 10_000 + w * 3_000 + i;
                assert_eq!(t.get(&u64_key(k)), Some(k));
            }
        }
    }

    #[test]
    fn readers_never_observe_torn_pairs() {
        // A writer that removes and re-inserts keys recycles leaf slots. The nasty
        // shape is the ABA one: removing key 50 and inserting key 55 (same sorted
        // rank, same freed slot) restores a bit-identical permutation word, so a
        // reader validating by permutation equality alone would happily pair one
        // slot's key with the other entry's value. Both `get` and `scan` must
        // version-validate the whole read instead.
        let t: Arc<PMasstree> = Arc::new(Masstree::new());
        let value_of = |k: u64| k * 31 + 7;
        for k in (0..120u64).step_by(10) {
            t.insert(&u64_key(k), value_of(k));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    // The hard deadline keeps the writer from spinning forever if a
                    // reader panics before setting the stop flag.
                    let hard_deadline =
                        std::time::Instant::now() + std::time::Duration::from_secs(10);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed)
                        && std::time::Instant::now() < hard_deadline
                    {
                        // Five independent slot-recycling windows per iteration.
                        for base in [10u64, 30, 50, 70, 90] {
                            t.remove(&u64_key(base));
                            t.insert(&u64_key(base + 5), value_of(base + 5));
                            t.remove(&u64_key(base + 5));
                            t.insert(&u64_key(base), value_of(base));
                        }
                    }
                });
            }
            for _ in 0..3 {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let deadline =
                        std::time::Instant::now() + std::time::Duration::from_millis(700);
                    while std::time::Instant::now() < deadline {
                        for (key, val) in t.scan(&[], 64) {
                            let k = recipe::key::key_to_u64(&key);
                            assert_eq!(val, value_of(k), "scan: torn (key, value) pair for {k}");
                        }
                        for base in [10u64, 30, 50, 70, 90] {
                            for k in [base, base + 5] {
                                if let Some(val) = t.get(&u64_key(k)) {
                                    assert_eq!(val, value_of(k), "get: torn value for {k}");
                                }
                            }
                        }
                    }
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
    }

    #[test]
    fn pmem_flushes_and_dram_does_not() {
        let dram: DramMasstree = Masstree::new();
        let before = pm::stats::snapshot_local();
        for i in 0..1_000u64 {
            dram.insert(&u64_key(i), i);
        }
        let d = pm::stats::snapshot_local().since(&before);
        assert_eq!(d.clwb, 0);
        assert_eq!(d.fence, 0);

        let pmem: PMasstree = Masstree::new();
        let before = pm::stats::snapshot_local();
        for i in 0..1_000u64 {
            pmem.insert(&u64_key(i), i);
        }
        let d = pm::stats::snapshot_local().since(&before);
        // Slot write (key/len/value) + permutation publish, each flushed.
        assert!(d.clwb as f64 / 1_000.0 >= 2.0, "expected >= 2 clwb per insert");
        assert!(d.fence > 0);
    }

    #[test]
    fn trait_object_and_recover() {
        use recipe::session::IndexExt;
        let t: PMasstree = Masstree::new();
        let idx: &dyn Index = &t;
        let mut h = idx.handle();
        assert_eq!(h.insert(&u64_key(1), 5), Ok(OpResult::Inserted));
        assert_eq!(h.update(&u64_key(1), 6), Ok(OpResult::Updated));
        assert_eq!(h.update(&u64_key(2), 6), Err(OpError::NotFound));
        assert_eq!(h.index_name(), "P-Masstree");
        assert!(h.capabilities().scan && h.capabilities().linearizable_update);
        t.recover();
        assert_eq!(t.get(&u64_key(1)), Some(6));
        assert!(t.insert(&u64_key(2), 7), "tree must stay writable after recover");
        let dram: DramMasstree = Masstree::new();
        assert_eq!(dram.index_name(), "Masstree");
    }
}
