//! The FAST & FAIR B+ tree.
//!
//! Structure-modification operations (leaf and internal splits) are serialized by a
//! single SMO lock — splits are rare (one per `CARDINALITY` inserts per level) and the
//! original implementation's unprotected parent update is precisely what produced the
//! lost-key bug described in §3 of the RECIPE paper. Sibling pointers plus per-node
//! high keys (the fix the RECIPE authors proposed) let both readers and writers "move
//! right" across in-flight splits, B-link style.

use crate::node::{
    cmp_word_key, cmp_words, encode_key, word_to_bytes, KeyMode, Node, CARDINALITY, EMPTY,
};
use recipe::persist::PersistMode;
use std::cmp::Ordering as CmpOrdering;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU8, Ordering};

/// The FAST & FAIR persistent B+ tree (the paper's hand-crafted ordered baseline).
pub struct FastFair<P: PersistMode> {
    root: AtomicPtr<Node>,
    /// 0 = undecided, 1 = inline 8-byte keys, 2 = indirect (string) keys.
    mode: AtomicU8,
    smo_lock: parking_lot::Mutex<()>,
    _policy: PhantomData<P>,
}

// SAFETY: nodes are reached through atomic pointers, mutated under locks with
// reader-tolerant store orderings, and never freed while the tree is alive.
unsafe impl<P: PersistMode> Send for FastFair<P> {}
// SAFETY: as above — node words are atomics and nodes are never freed while alive.
unsafe impl<P: PersistMode> Sync for FastFair<P> {}

impl<P: PersistMode> Default for FastFair<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: PersistMode> FastFair<P> {
    /// Create an empty tree.
    #[must_use]
    pub fn new() -> Self {
        let root = Node::alloc(true);
        // Persist the freshly allocated root before publishing it — unless the
        // `durability-bug` feature reproduces the missing-root-flush bug the paper's
        // durability test found in the original implementation (§7.5).
        #[cfg(not(feature = "durability-bug"))]
        P::persist_obj(root, true);
        let t = FastFair {
            root: AtomicPtr::new(root),
            mode: AtomicU8::new(0),
            smo_lock: parking_lot::Mutex::new(()),
            _policy: PhantomData,
        };
        P::persist_obj(&t.root, true);
        t
    }

    fn key_mode(&self, key: &[u8]) -> KeyMode {
        let want = if key.len() <= 8 { 1 } else { 2 };
        match self.mode.compare_exchange(0, want, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {}
            Err(_cur) => {}
        }
        if self.mode.load(Ordering::Acquire) == 2 {
            KeyMode::Indirect
        } else {
            KeyMode::Inline
        }
    }

    #[inline]
    fn node_ref<'a>(&self, ptr: *mut Node) -> &'a Node {
        // SAFETY: nodes are never freed while the tree is alive.
        unsafe { &*ptr }
    }

    /// Non-blocking descent to the leaf covering `key`, following sibling pointers
    /// across in-flight splits. Returns the leaf and the path of internal nodes.
    fn find_leaf(&self, mode: KeyMode, key: &[u8], path: Option<&mut Vec<*mut Node>>) -> *mut Node {
        let mut collected = path;
        let mut cur = self.root.load(Ordering::Acquire);
        loop {
            pm::stats::record_node_visit();
            let node = self.node_ref(cur);
            if node.must_move_right(mode, key) {
                let sib = node.sibling.load(Ordering::Acquire);
                if !sib.is_null() {
                    cur = sib;
                    continue;
                }
            }
            if node.is_leaf() {
                return cur;
            }
            if let Some(p) = collected.as_deref_mut() {
                p.push(cur);
            }
            let child = node.find_child(mode, key);
            if child == 0 {
                // Empty internal node can only appear transiently; restart from root.
                cur = self.root.load(Ordering::Acquire);
                if let Some(p) = collected.as_deref_mut() {
                    p.clear();
                }
                continue;
            }
            cur = child as *mut Node;
        }
    }

    /// Point lookup (lock-free, duplicate tolerant).
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mode = self.key_mode(key);
        let mut leaf_ptr = self.find_leaf(mode, key, None);
        loop {
            let leaf = self.node_ref(leaf_ptr);
            if leaf.must_move_right(mode, key) {
                let sib = leaf.sibling.load(Ordering::Acquire);
                if !sib.is_null() {
                    leaf_ptr = sib;
                    continue;
                }
            }
            if let Some(v) = leaf.find_in_leaf_validated(mode, key) {
                return Some(v);
            }
            // A split may have moved the key to the right sibling after we checked the
            // high key but before we scanned the (now truncated) entries; re-check and
            // follow the sibling if so.
            if leaf.must_move_right(mode, key) {
                let sib = leaf.sibling.load(Ordering::Acquire);
                if !sib.is_null() {
                    leaf_ptr = sib;
                    continue;
                }
            }
            return None;
        }
    }

    /// Insert or update; returns `true` if the key was newly inserted.
    pub fn insert(&self, key: &[u8], value: u64) -> bool {
        let mode = self.key_mode(key);
        let leaf_ptr = self.find_leaf(mode, key, None);
        let mut leaf = self.node_ref(leaf_ptr);
        let mut guard = leaf.lock.lock();
        // Re-validate under the lock: a concurrent split may have moved our range.
        while leaf.must_move_right(mode, key) {
            let sib = leaf.sibling.load(Ordering::Acquire);
            if sib.is_null() {
                break;
            }
            drop(guard);
            leaf = self.node_ref(sib);
            guard = leaf.lock.lock();
        }
        if leaf.update_value::<P>(mode, key, value) {
            return false;
        }
        if leaf.count() < CARDINALITY {
            let w = encode_key::<P>(mode, key);
            leaf.insert_sorted::<P>(mode, w, value);
            return true;
        }
        // Split required: redo the descent under the SMO lock so that at most one
        // structure modification is in flight (ordering: SMO lock before node lock).
        drop(guard);
        let smo = self.smo_lock.lock();
        let leaf_ptr = self.find_leaf(mode, key, None);
        let mut leaf = self.node_ref(leaf_ptr);
        let mut guard = leaf.lock.lock();
        while leaf.must_move_right(mode, key) {
            let sib = leaf.sibling.load(Ordering::Acquire);
            if sib.is_null() {
                break;
            }
            drop(guard);
            leaf = self.node_ref(sib);
            guard = leaf.lock.lock();
        }
        if leaf.update_value::<P>(mode, key, value) {
            return false;
        }
        if leaf.count() < CARDINALITY {
            let w = encode_key::<P>(mode, key);
            leaf.insert_sorted::<P>(mode, w, value);
            return true;
        }
        self.split_and_insert(mode, leaf, key, value);
        drop(guard);
        drop(smo);
        true
    }

    /// Split `node` (its lock and the SMO lock are held) and insert `key`.
    fn split_and_insert(&self, mode: KeyMode, node: &Node, key: &[u8], value: u64) {
        let count = node.count();
        let mid = count / 2;
        let split_word = node.entries[mid].key.load(Ordering::Acquire);

        // Build the new right sibling privately.
        let right_ptr = Node::alloc(node.is_leaf());
        let right = self.node_ref(right_ptr);
        let (copy_from, leftmost) = if node.is_leaf() {
            (mid, 0)
        } else {
            // Internal split: the separator key moves up; its child becomes the
            // sibling's leftmost pointer.
            (mid + 1, node.entries[mid].val.load(Ordering::Acquire))
        };
        right.leftmost.store(leftmost, Ordering::Relaxed);
        for (j, i) in (copy_from..count).enumerate() {
            right.entries[j]
                .key
                .store(node.entries[i].key.load(Ordering::Acquire), Ordering::Relaxed);
            right.entries[j]
                .val
                .store(node.entries[i].val.load(Ordering::Acquire), Ordering::Relaxed);
        }
        right.sibling.store(node.sibling.load(Ordering::Acquire), Ordering::Relaxed);
        right.high_key.store(node.high_key.load(Ordering::Acquire), Ordering::Relaxed);

        // If the pending key belongs to the upper half, plant it while the sibling is
        // still private (no other writer can reach it before the link below).
        let key_goes_right = cmp_word_key(mode, split_word, key) != CmpOrdering::Greater;
        if key_goes_right {
            let w = encode_key::<P>(mode, key);
            right.insert_sorted::<P>(mode, w, value);
        }
        P::persist_obj(right_ptr, true);
        P::crash_site("fastfair.split.sibling_persisted");

        // Link the sibling (atomic store) and shrink this node's key space.
        node.sibling.store(right_ptr, Ordering::Release);
        P::mark_dirty_obj(&node.sibling);
        P::persist_obj(&node.sibling, true);
        P::crash_site("fastfair.split.sibling_linked");
        node.high_key.store(split_word, Ordering::Release);
        P::mark_dirty_obj(&node.high_key);
        P::persist_obj(&node.high_key, true);
        // Truncate the moved entries with a single atomic store of the terminator.
        node.entries[mid].key.store(EMPTY, Ordering::Release);
        P::mark_dirty_obj(&node.entries[mid].key);
        P::persist_obj(&node.entries[mid].key, true);
        P::crash_site("fastfair.split.left_truncated");

        // A key belonging to the lower half is inserted under the node lock we hold.
        if !key_goes_right {
            let w = encode_key::<P>(mode, key);
            node.insert_sorted::<P>(mode, w, value);
        }

        // Propagate the separator to the parent (still under the SMO lock).
        self.insert_into_parent(mode, node as *const Node as *mut Node, split_word, right_ptr);
    }

    /// Insert `(split_word -> right)` into the parent of `left`, splitting parents as
    /// needed. Called with the SMO lock held.
    fn insert_into_parent(
        &self,
        mode: KeyMode,
        left: *mut Node,
        split_word: u64,
        right: *mut Node,
    ) {
        let root = self.root.load(Ordering::Acquire);
        if root == left {
            // Root split: build a new root and publish it with one atomic store.
            let new_root_ptr = Node::alloc(false);
            let new_root = self.node_ref(new_root_ptr);
            new_root.leftmost.store(left as u64, Ordering::Relaxed);
            new_root.entries[0].key.store(split_word, Ordering::Relaxed);
            new_root.entries[0].val.store(right as u64, Ordering::Relaxed);
            P::persist_obj(new_root_ptr, true);
            P::crash_site("fastfair.root_split.new_root_persisted");
            self.root.store(new_root_ptr, Ordering::Release);
            P::mark_dirty_obj(&self.root);
            P::persist_obj(&self.root, true);
            P::crash_site("fastfair.root_split.committed");
            return;
        }

        // Find the parent of `left` by descending towards the separator key.
        let parent_ptr = self.find_parent(mode, left, split_word);
        let Some(parent_ptr) = parent_ptr else {
            // The parent link was never completed before a crash; the sibling chain
            // still makes the keys reachable, matching FAST & FAIR's degraded-but-
            // correct recovery behaviour. Nothing more to do.
            return;
        };
        let parent = self.node_ref(parent_ptr);
        if parent.count() < CARDINALITY {
            parent.insert_sorted::<P>(mode, split_word, right as u64);
            return;
        }
        // Parent is full: split it and recurse.
        let count = parent.count();
        let mid = count / 2;
        let parent_split_word = parent.entries[mid].key.load(Ordering::Acquire);
        let new_parent_right = Node::alloc(false);
        let pr = self.node_ref(new_parent_right);
        pr.leftmost.store(parent.entries[mid].val.load(Ordering::Acquire), Ordering::Relaxed);
        for (j, i) in (mid + 1..count).enumerate() {
            pr.entries[j]
                .key
                .store(parent.entries[i].key.load(Ordering::Acquire), Ordering::Relaxed);
            pr.entries[j]
                .val
                .store(parent.entries[i].val.load(Ordering::Acquire), Ordering::Relaxed);
        }
        pr.sibling.store(parent.sibling.load(Ordering::Acquire), Ordering::Relaxed);
        pr.high_key.store(parent.high_key.load(Ordering::Acquire), Ordering::Relaxed);
        P::persist_obj(new_parent_right, true);
        P::crash_site("fastfair.parent_split.sibling_persisted");
        parent.sibling.store(new_parent_right, Ordering::Release);
        P::persist_obj(&parent.sibling, true);
        parent.high_key.store(parent_split_word, Ordering::Release);
        P::persist_obj(&parent.high_key, true);
        parent.entries[mid].key.store(EMPTY, Ordering::Release);
        P::persist_obj(&parent.entries[mid].key, true);
        P::crash_site("fastfair.parent_split.left_truncated");

        // Route the pending separator into the correct half, then recurse upwards.
        let target = if cmp_words(mode, split_word, parent_split_word) == CmpOrdering::Less {
            parent_ptr
        } else {
            new_parent_right
        };
        self.node_ref(target).insert_sorted::<P>(mode, split_word, right as u64);
        self.insert_into_parent(mode, parent_ptr, parent_split_word, new_parent_right);
    }

    /// Locate the internal node that currently holds (or should hold) the routing
    /// entry for `left`. Returns `None` if `left` is not reachable from the root
    /// through child pointers (possible only after an interrupted split).
    fn find_parent(&self, mode: KeyMode, left: *mut Node, split_word: u64) -> Option<*mut Node> {
        let key_bytes = word_to_bytes(mode, split_word);
        let mut cur = self.root.load(Ordering::Acquire);
        let mut parent: Option<*mut Node> = None;
        loop {
            if cur == left {
                return parent;
            }
            let node = self.node_ref(cur);
            if node.is_leaf() {
                return None;
            }
            // Move right across in-flight splits of internal nodes.
            if node.must_move_right(mode, &key_bytes) {
                let sib = node.sibling.load(Ordering::Acquire);
                if !sib.is_null() {
                    cur = sib;
                    continue;
                }
            }
            parent = Some(cur);
            let child = node.find_child(mode, &key_bytes);
            if child == 0 {
                return None;
            }
            cur = child as *mut Node;
        }
    }

    /// Remove a key. Returns `true` if it was present. No node merges are performed
    /// (the evaluated workloads contain no deletes).
    pub fn remove(&self, key: &[u8]) -> bool {
        let mode = self.key_mode(key);
        let leaf_ptr = self.find_leaf(mode, key, None);
        let mut leaf = self.node_ref(leaf_ptr);
        let mut guard = leaf.lock.lock();
        while leaf.must_move_right(mode, key) {
            let sib = leaf.sibling.load(Ordering::Acquire);
            if sib.is_null() {
                break;
            }
            drop(guard);
            leaf = self.node_ref(sib);
            guard = leaf.lock.lock();
        }
        leaf.remove_sorted::<P>(mode, key)
    }

    /// Range scan: up to `count` pairs with key `>= start`, ascending, following leaf
    /// sibling pointers.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        let mut out: Vec<(Vec<u8>, u64)> = Vec::with_capacity(count.min(1024));
        self.scan_into(start, count, &mut out);
        out
    }

    /// [`FastFair::scan`] into a caller-provided buffer: appends up to `count`
    /// pairs with key `>= start` (ascending) to `out` without clearing it, so
    /// cursor callers can stream batches through one reused allocation.
    pub fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<(Vec<u8>, u64)>) {
        if count == 0 {
            return;
        }
        let count = out.len().saturating_add(count);
        let mode = self.key_mode(start);
        let mut leaf_ptr = self.find_leaf(mode, start, None);
        while !leaf_ptr.is_null() && out.len() < count {
            let leaf = self.node_ref(leaf_ptr);
            pm::stats::record_node_visit();
            // Version-validated per-leaf read section (see
            // `Node::find_in_leaf_validated`): a concurrent FAIR remove can
            // move an entry below an ascending reader's cursor, so a leaf
            // scanned while its version moved is rolled back and re-read.
            loop {
                let begin = leaf.lock.read_begin();
                let mark = out.len();
                let n = leaf.count();
                for i in 0..n {
                    let kw = leaf.entries[i].key.load(Ordering::Acquire);
                    if kw == EMPTY {
                        break;
                    }
                    if cmp_word_key(mode, kw, start) == CmpOrdering::Less {
                        continue;
                    }
                    // Rightmost-duplicate rule (see `Node::find_in_leaf`): a
                    // crash-persisted torn insert duplicates a key into
                    // adjacent slots with the complete pair on the right.
                    if i + 1 < CARDINALITY && leaf.entries[i + 1].key.load(Ordering::Acquire) == kw
                    {
                        continue;
                    }
                    let bytes = word_to_bytes(mode, kw);
                    let val = leaf.entries[i].val.load(Ordering::Acquire);
                    // Skip transient duplicates across a split boundary.
                    if out.last().map(|(k, _)| k == &bytes).unwrap_or(false) {
                        continue;
                    }
                    out.push((bytes, val));
                    if out.len() >= count {
                        break;
                    }
                }
                if !leaf.lock.read_retry(begin) {
                    break;
                }
                out.truncate(mark);
            }
            leaf_ptr = leaf.sibling.load(Ordering::Acquire);
        }
    }

    /// Re-initialise every node lock after a (simulated) crash.
    pub fn recover_locks(&self) {
        fn walk(ptr: *mut Node) {
            if ptr.is_null() {
                return;
            }
            // SAFETY: nodes reachable from the root are never freed.
            let node = unsafe { &*ptr };
            node.lock.force_unlock();
            if !node.is_leaf() {
                walk(node.leftmost.load(Ordering::Acquire) as *mut Node);
                for i in 0..node.count() {
                    walk(node.entries[i].val.load(Ordering::Acquire) as *mut Node);
                }
            }
            // Sibling chains cover nodes whose parent update never completed.
            walk(node.sibling.load(Ordering::Acquire));
        }
        walk(self.root.load(Ordering::Acquire));
    }

    /// Number of stored keys (walks the leaf chain; tests and diagnostics only).
    #[must_use]
    pub fn len(&self) -> usize {
        let mode = if self.mode.load(Ordering::Acquire) == 2 {
            KeyMode::Indirect
        } else {
            KeyMode::Inline
        };
        let mut cur = self.root.load(Ordering::Acquire);
        // Descend to the leftmost leaf.
        loop {
            let node = self.node_ref(cur);
            if node.is_leaf() {
                break;
            }
            let lm = node.leftmost.load(Ordering::Acquire);
            if lm == 0 {
                break;
            }
            cur = lm as *mut Node;
        }
        let mut seen = std::collections::BTreeSet::new();
        while !cur.is_null() {
            let node = self.node_ref(cur);
            for i in 0..node.count() {
                let kw = node.entries[i].key.load(Ordering::Acquire);
                if kw != EMPTY {
                    seen.insert(word_to_bytes(mode, kw));
                }
            }
            cur = node.sibling.load(Ordering::Acquire);
        }
        seen.len()
    }

    /// Whether the tree holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
