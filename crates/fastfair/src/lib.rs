//! # FAST & FAIR — the hand-crafted persistent B+ tree baseline
//!
//! FAST & FAIR (Hwang et al., FAST '18) is the state-of-the-art open-source concurrent
//! PM B+ tree the RECIPE paper evaluates against (§7.1). It sorts keys in place with a
//! failure-atomic shift (FAST) and deletes with the symmetric FAIR shift; readers are
//! lock-free and tolerate the transient duplicates those shifts create; writers take
//! per-node locks.
//!
//! This reproduction includes the high-key / sibling-pointer fix the RECIPE authors
//! proposed for the lost-key concurrency bug of §3, and serializes structure
//! modifications with an SMO lock (the original's unlocked parent update is the root
//! cause of that bug). The optional `durability-bug` cargo feature reproduces the
//! durability bug the paper's testing found — the initial root allocation is not
//! flushed — so the crash-testing harness has a real bug to catch (§7.5).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod node;
pub mod tree;

pub use node::KeyMode;
pub use tree::FastFair;

/// Every crash site this crate can emit, for the §5 per-site exhaustive sweep.
pub const CRASH_SITES: &[&str] = &[
    "fastfair.shift.step",
    "fastfair.insert.value_written",
    "fastfair.insert.committed",
    "fastfair.remove.step",
    "fastfair.split.sibling_persisted",
    "fastfair.split.sibling_linked",
    "fastfair.split.left_truncated",
    "fastfair.root_split.new_root_persisted",
    "fastfair.root_split.committed",
    "fastfair.parent_split.sibling_persisted",
    "fastfair.parent_split.left_truncated",
];

use recipe::index::Recoverable;
use recipe::persist::{Dram, PersistMode, Pmem};
use recipe::session::{Capabilities, Index, OpError, OpResult};

/// The persistent FAST & FAIR B+ tree (the configuration evaluated in the paper).
pub type PFastFair = FastFair<Pmem>;
/// FAST & FAIR with persistence compiled out (used by ablation benchmarks).
pub type DramFastFair = FastFair<Dram>;

/// What this index supports. `linearizable_update` is `false`: FAST & FAIR
/// acquires leaf locks per shift inside `insert`, so there is no single lock
/// under which to check presence and re-insert — `update` is the documented
/// non-atomic get-then-insert fallback.
pub const CAPS: Capabilities = Capabilities::ordered_index(false);

impl<P: PersistMode> Index for FastFair<P> {
    fn exec_insert(&self, key: &[u8], value: u64) -> Result<OpResult, OpError> {
        if FastFair::insert(self, key, value) {
            Ok(OpResult::Inserted)
        } else {
            Ok(OpResult::Updated)
        }
    }

    // `exec_update` keeps the trait's default get-then-insert; `CAPS` reports it.

    fn exec_get(&self, key: &[u8]) -> Option<u64> {
        FastFair::get(self, key)
    }

    fn exec_remove(&self, key: &[u8]) -> Result<OpResult, OpError> {
        if FastFair::remove(self, key) {
            Ok(OpResult::Removed)
        } else {
            Err(OpError::NotFound)
        }
    }

    fn exec_scan_chunk(&self, start: &[u8], max: usize, out: &mut Vec<(Vec<u8>, u64)>) {
        FastFair::scan_into(self, start, max, out);
    }

    fn capabilities(&self) -> Capabilities {
        CAPS
    }

    fn index_name(&self) -> String {
        if P::PERSISTENT {
            "FAST&FAIR".into()
        } else {
            "FAST&FAIR(dram)".into()
        }
    }
}

impl<P: PersistMode> Recoverable for FastFair<P> {
    fn recover(&self) {
        self.recover_locks();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe::key::u64_key;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn insert_get_integer_keys() {
        let t: PFastFair = FastFair::new();
        for i in 0..20_000u64 {
            assert!(t.insert(&u64_key(i), i * 2), "insert {i}");
        }
        for i in 0..20_000u64 {
            assert_eq!(t.get(&u64_key(i)), Some(i * 2), "get {i}");
        }
        assert_eq!(t.get(&u64_key(20_000)), None);
        assert_eq!(t.len(), 20_000);
    }

    #[test]
    fn insert_is_upsert() {
        let t: PFastFair = FastFair::new();
        assert!(t.insert(&u64_key(7), 1));
        assert!(!t.insert(&u64_key(7), 2));
        assert_eq!(t.get(&u64_key(7)), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn string_keys_round_trip() {
        let t: PFastFair = FastFair::new();
        let mut model = BTreeMap::new();
        for i in 0..5_000u64 {
            let key = format!("user{:020}", i * 37 % 5_000);
            let newly = model.insert(key.clone().into_bytes(), i).is_none();
            assert_eq!(t.insert(key.as_bytes(), i), newly, "key {key}");
        }
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(*v));
        }
    }

    #[test]
    fn remove_keeps_other_keys() {
        let t: PFastFair = FastFair::new();
        for i in 0..2_000u64 {
            t.insert(&u64_key(i), i);
        }
        for i in (0..2_000u64).step_by(3) {
            assert!(t.remove(&u64_key(i)));
        }
        for i in 0..2_000u64 {
            let expect = if i % 3 == 0 { None } else { Some(i) };
            assert_eq!(t.get(&u64_key(i)), expect, "key {i}");
        }
    }

    #[test]
    fn scan_is_sorted_and_bounded() {
        let t: PFastFair = FastFair::new();
        let mut model = BTreeMap::new();
        for i in 0..5_000u64 {
            let k = u64_key(i * 11);
            t.insert(&k, i);
            model.insert(k.to_vec(), i);
        }
        for start in [0u64, 10, 5_000, 54_989, 60_000] {
            let sk = u64_key(start);
            let got = t.scan(&sk, 40);
            let want: Vec<(Vec<u8>, u64)> =
                model.range(sk.to_vec()..).take(40).map(|(k, v)| (k.clone(), *v)).collect();
            assert_eq!(got, want, "scan from {start}");
        }
    }

    #[test]
    fn concurrent_inserts_keep_all_keys() {
        let t: Arc<PFastFair> = Arc::new(FastFair::new());
        let threads = 8u64;
        let per = 3_000u64;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let k = tid * per + i;
                    assert!(t.insert(&u64_key(k), k));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for k in 0..threads * per {
            assert_eq!(t.get(&u64_key(k)), Some(k), "key {k} lost");
        }
        assert_eq!(t.len(), (threads * per) as usize);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let t: Arc<PFastFair> = Arc::new(FastFair::new());
        for i in 0..5_000u64 {
            t.insert(&u64_key(i), i);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = i % 5_000;
                    assert_eq!(t.get(&u64_key(k)), Some(k));
                    i += 1;
                }
            }));
        }
        let mut writers = Vec::new();
        for w in 0..4u64 {
            let t = Arc::clone(&t);
            writers.push(std::thread::spawn(move || {
                for i in 0..3_000u64 {
                    let k = 10_000 + w * 3_000 + i;
                    t.insert(&u64_key(k), k);
                }
            }));
        }
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        for w in 0..4u64 {
            for i in 0..3_000u64 {
                let k = 10_000 + w * 3_000 + i;
                assert_eq!(t.get(&u64_key(k)), Some(k));
            }
        }
    }

    #[test]
    fn flushes_are_counted_per_insert() {
        let t: PFastFair = FastFair::new();
        let before = pm::stats::snapshot_local();
        for i in 0..1_000u64 {
            t.insert(&u64_key(i), i);
        }
        let d = pm::stats::snapshot_local().since(&before);
        let per_insert = d.clwb as f64 / 1_000.0;
        // The FAST shift flushes once per shifted entry; the paper reports ~7 clwb per
        // insert for FAST & FAIR vs ~3 for P-ART (Fig. 4c). Sequential keys land at
        // the tail so this is a lower bound, but it must exceed the CLHT-style 1.
        assert!(per_insert >= 1.0, "expected >= 1 clwb per insert, got {per_insert}");
        assert!(d.fence >= d.clwb / 2);
    }

    #[test]
    fn trait_object_and_recover() {
        use recipe::session::IndexExt;
        let t: PFastFair = FastFair::new();
        let idx: &dyn Index = &t;
        let mut h = idx.handle();
        assert_eq!(h.insert(&u64_key(1), 5), Ok(OpResult::Inserted));
        assert_eq!(h.update(&u64_key(1), 6), Ok(OpResult::Updated));
        assert_eq!(h.update(&u64_key(2), 6), Err(OpError::NotFound));
        assert_eq!(h.index_name(), "FAST&FAIR");
        assert!(h.capabilities().scan && !h.capabilities().linearizable_update);
        t.recover();
        assert_eq!(t.get(&u64_key(1)), Some(6));
    }
}
