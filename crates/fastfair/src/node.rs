//! B+-tree nodes for FAST & FAIR.
//!
//! FAST & FAIR (Hwang et al., FAST '18) keeps entries sorted *in place* and makes the
//! shift-based insertion failure-atomic: every 8-byte store during a shift leaves the
//! array in a state that lock-free readers can tolerate (either a transient duplicate
//! of a neighbouring entry or a valid sorted array). Writers order the two stores of a
//! slot value-first, so whenever a key appears in two adjacent slots the *rightmost*
//! copy is a complete (key, value) pair and readers resolve duplicate runs rightward —
//! this holds both for the transient windows seen by concurrent readers and for the
//! persistent state left by a crash between the two stores. This module implements the
//! node layout, the tolerant read, and the FAST shift; the tree logic lives in the
//! crate root.
//!
//! Key words are either the big-endian encoding of an 8-byte key (integer mode) or a
//! pointer to an out-of-line key buffer (string mode) — the same scheme the RECIPE
//! authors used to add string support to the original implementation (§7), and the
//! reason FAST & FAIR pays an extra pointer dereference per comparison on string keys.

use recipe::lock::VersionLock;
use recipe::persist::PersistMode;
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};

/// Entries per node (the paper uses 512-byte nodes; 30 × 16 B entries ≈ 480 B).
pub const CARDINALITY: usize = 30;

/// Key-word sentinel for an empty slot.
pub const EMPTY: u64 = 0;

/// How key words are interpreted by a tree instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMode {
    /// Key words hold the big-endian value of an 8-byte key plus one (so 0 stays free
    /// as the empty sentinel).
    Inline,
    /// Key words hold a pointer to a leaked [`KeyBuf`].
    Indirect,
}

/// Out-of-line key storage for string keys.
pub struct KeyBuf {
    /// The key bytes.
    pub bytes: Box<[u8]>,
}

/// Encode a search key into a key word for the given mode, allocating a [`KeyBuf`] in
/// indirect mode (`persist` controls whether the fresh buffer is flushed).
pub fn encode_key<P: PersistMode>(mode: KeyMode, key: &[u8]) -> u64 {
    match mode {
        KeyMode::Inline => recipe::key::key_to_u64(key).wrapping_add(1),
        KeyMode::Indirect => {
            let buf = pm::alloc::pm_box(KeyBuf { bytes: key.to_vec().into_boxed_slice() });
            // SAFETY: freshly allocated, uniquely owned.
            let bytes = unsafe { &(*buf).bytes };
            P::persist_range(bytes.as_ptr(), bytes.len(), false);
            P::persist_obj(buf, true);
            buf as u64
        }
    }
}

/// Compare a stored key word against a search key.
pub fn cmp_word_key(mode: KeyMode, word: u64, key: &[u8]) -> CmpOrdering {
    match mode {
        KeyMode::Inline => word.cmp(&recipe::key::key_to_u64(key).wrapping_add(1)),
        KeyMode::Indirect => {
            pm::stats::record_node_visit(); // the extra dereference string keys pay
                                            // SAFETY: indirect key words are pointers to leaked KeyBufs.
            let buf = unsafe { &*(word as *const KeyBuf) };
            (*buf.bytes).cmp(key)
        }
    }
}

/// Compare two stored key words.
pub fn cmp_words(mode: KeyMode, a: u64, b: u64) -> CmpOrdering {
    match mode {
        KeyMode::Inline => a.cmp(&b),
        KeyMode::Indirect => {
            // SAFETY: see `cmp_word_key`.
            let ka = unsafe { &*(a as *const KeyBuf) };
            // SAFETY: see `cmp_word_key`.
            let kb = unsafe { &*(b as *const KeyBuf) };
            ka.bytes.cmp(&kb.bytes)
        }
    }
}

/// Materialise the byte representation of a stored key word.
pub fn word_to_bytes(mode: KeyMode, word: u64) -> Vec<u8> {
    match mode {
        KeyMode::Inline => recipe::key::u64_key(word.wrapping_sub(1)).to_vec(),
        KeyMode::Indirect => {
            // SAFETY: see `cmp_word_key`.
            let buf = unsafe { &*(word as *const KeyBuf) };
            buf.bytes.to_vec()
        }
    }
}

/// One sorted slot: a key word and a value (record location, or child pointer in
/// internal nodes).
#[derive(Default)]
pub struct Entry {
    /// Key word ([`EMPTY`] marks the end of the used region).
    pub key: AtomicU64,
    /// Value or child pointer.
    pub val: AtomicU64,
}

/// A FAST & FAIR node (leaf or internal).
pub struct Node {
    /// Writer lock.
    pub lock: VersionLock,
    /// Leaf marker (1) vs internal (0).
    pub leaf: AtomicU8,
    /// Leftmost child (internal nodes only).
    pub leftmost: AtomicU64,
    /// Sorted entries terminated by an [`EMPTY`] key word.
    pub entries: [Entry; CARDINALITY],
    /// Right sibling (B-link pointer).
    pub sibling: AtomicPtr<Node>,
    /// Exclusive upper bound of this node's key space; [`EMPTY`] means unbounded.
    /// This is the high key whose absence caused the concurrency bug §3 describes.
    pub high_key: AtomicU64,
}

impl Node {
    /// Allocate an empty node on the PM pool.
    pub fn alloc(leaf: bool) -> *mut Node {
        pm::alloc::pm_box(Node {
            lock: VersionLock::new(),
            leaf: AtomicU8::new(u8::from(leaf)),
            leftmost: AtomicU64::new(0),
            entries: Default::default(),
            sibling: AtomicPtr::new(std::ptr::null_mut()),
            high_key: AtomicU64::new(EMPTY),
        })
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.leaf.load(Ordering::Acquire) == 1
    }

    /// Number of used entries (scans for the terminator, like the original
    /// implementation derives the count from the array itself).
    pub fn count(&self) -> usize {
        for i in 0..CARDINALITY {
            if self.entries[i].key.load(Ordering::Acquire) == EMPTY {
                return i;
            }
        }
        CARDINALITY
    }

    /// Lock-free, duplicate-tolerant point lookup within this node (leaf).
    ///
    /// A FAST shift, the final entry plant of an insert and a FAIR remove all
    /// momentarily duplicate a key into two adjacent slots, and the *left* copy is
    /// the one that can hold a mixed (key, value) pair mid-store — mirrored
    /// persistently if a crash lands between the two 8-byte stores. The rightmost
    /// copy of a duplicate run is always a complete pair, so a reader that matches a
    /// duplicated key defers to it.
    pub fn find_in_leaf(&self, mode: KeyMode, key: &[u8]) -> Option<u64> {
        for i in 0..CARDINALITY {
            let k = self.entries[i].key.load(Ordering::Acquire);
            if k == EMPTY {
                return None;
            }
            match cmp_word_key(mode, k, key) {
                CmpOrdering::Equal => {
                    let v = self.entries[i].val.load(Ordering::Acquire);
                    // Rightmost-duplicate rule: the left copy may be mid-plant
                    // (new value, old key) or mid-shift (new key, old value).
                    if i + 1 < CARDINALITY && self.entries[i + 1].key.load(Ordering::Acquire) == k {
                        continue;
                    }
                    // Re-check the key to pair the value with the right key (atomic
                    // snapshot, same idea as CLHT).
                    if self.entries[i].key.load(Ordering::Acquire) == k {
                        return Some(v);
                    }
                    return self.find_in_leaf(mode, key);
                }
                CmpOrdering::Greater => return None,
                CmpOrdering::Less => {}
            }
        }
        None
    }

    /// [`Node::find_in_leaf`] under seqlock-style version validation (the
    /// original implementation's `switch_counter` retry).
    ///
    /// Duplicate tolerance alone is not enough for concurrent *removes*: the
    /// FAIR shift-left walks the array in the same ascending order as a
    /// reader, so a writer that overtakes the reader moves an entry to a slot
    /// the reader has already passed — the reader then hits a larger key and
    /// concludes absence. Retrying whenever the node's version moved closes
    /// that window; the duplicate rules in [`Node::find_in_leaf`] still
    /// handle crash-*persisted* duplicate runs, which no retry can see.
    pub fn find_in_leaf_validated(&self, mode: KeyMode, key: &[u8]) -> Option<u64> {
        loop {
            let begin = self.lock.read_begin();
            let r = self.find_in_leaf(mode, key);
            if !self.lock.read_retry(begin) {
                return r;
            }
        }
    }

    /// Lock-free child search within an internal node: the child covering `key`.
    pub fn find_child(&self, mode: KeyMode, key: &[u8]) -> u64 {
        let mut child = self.leftmost.load(Ordering::Acquire);
        for i in 0..CARDINALITY {
            let k = self.entries[i].key.load(Ordering::Acquire);
            if k == EMPTY {
                break;
            }
            if cmp_word_key(mode, k, key) == CmpOrdering::Greater {
                break;
            }
            let c = self.entries[i].val.load(Ordering::Acquire);
            if c != 0 {
                child = c;
            }
        }
        child
    }

    /// FAST insertion into a sorted node (lock must be held): shift entries right one
    /// 8-byte word at a time — value before key, so every intermediate state shows
    /// either the old entry or an exact duplicate — then plant the new entry.
    pub fn insert_sorted<P: PersistMode>(&self, mode: KeyMode, key_word: u64, val: u64) {
        let count = self.count();
        debug_assert!(count < CARDINALITY);
        // Re-establish the terminator one slot further right *before* shifting: slots
        // beyond the current terminator may hold stale entries left behind by a
        // previous split truncation, and the shift below overwrites the old
        // terminator.
        if count + 1 < CARDINALITY {
            self.entries[count + 1].key.store(EMPTY, Ordering::Release);
            P::mark_dirty_obj(&self.entries[count + 1].key);
            P::persist_obj(&self.entries[count + 1].key, true);
        }
        // Find insertion position.
        let mut pos = count;
        for i in 0..count {
            if cmp_words(mode, self.entries[i].key.load(Ordering::Acquire), key_word)
                == CmpOrdering::Greater
            {
                pos = i;
                break;
            }
        }
        // Shift right: highest index first, value before key within each slot.
        // Every transient (and, after a crash, persistent) state is safe for
        // lock-free readers:
        //   * a destination slot shows a mixed pair only while the slot to its
        //     right still holds a complete copy of the duplicated key, so leaf
        //     readers resolve it with the rightmost-duplicate rule
        //     (`find_in_leaf`) — the same rule covers the value-then-key entry
        //     plant below;
        //   * internal nodes are searched last-match-≤, so the transiently
        //     duplicated key keeps routing to the old child, which the sibling
        //     pointer / high key makes correct.
        let mut i = count;
        while i > pos {
            let prev_val = self.entries[i - 1].val.load(Ordering::Acquire);
            let prev_key = self.entries[i - 1].key.load(Ordering::Acquire);
            self.entries[i].val.store(prev_val, Ordering::Release);
            self.entries[i].key.store(prev_key, Ordering::Release);
            P::mark_dirty_obj(&self.entries[i].key);
            P::mark_dirty_obj(&self.entries[i].val);
            // FAST flushes once per cache line crossed during the shift.
            P::persist_obj(&self.entries[i], true);
            P::crash_site("fastfair.shift.step");
            i -= 1;
        }
        self.entries[pos].val.store(val, Ordering::Release);
        P::mark_dirty_obj(&self.entries[pos].val);
        P::persist_obj(&self.entries[pos].val, true);
        P::crash_site("fastfair.insert.value_written");
        self.entries[pos].key.store(key_word, Ordering::Release);
        P::mark_dirty_obj(&self.entries[pos].key);
        P::persist_obj(&self.entries[pos].key, true);
        P::crash_site("fastfair.insert.committed");
    }

    /// FAIR deletion (lock must be held): shift entries left over the removed slot.
    /// Returns false if the key is absent.
    ///
    /// Removes repeatedly until no copy of the key remains: a crash between the
    /// value and key stores of an entry plant can persist a duplicate run, and a
    /// single shift-left would leave the stale copy behind to resurrect the key.
    pub fn remove_sorted<P: PersistMode>(&self, mode: KeyMode, key: &[u8]) -> bool {
        let mut removed = false;
        while self.remove_one::<P>(mode, key) {
            removed = true;
        }
        removed
    }

    fn remove_one<P: PersistMode>(&self, mode: KeyMode, key: &[u8]) -> bool {
        let count = self.count();
        let mut pos = None;
        for i in 0..count {
            if cmp_word_key(mode, self.entries[i].key.load(Ordering::Acquire), key)
                == CmpOrdering::Equal
            {
                pos = Some(i);
                break;
            }
        }
        let Some(pos) = pos else { return false };
        for i in pos..count {
            let (nk, nv) = if i + 1 < count {
                (
                    self.entries[i + 1].key.load(Ordering::Acquire),
                    self.entries[i + 1].val.load(Ordering::Acquire),
                )
            } else {
                (EMPTY, 0)
            };
            // Key first: the transiently mixed slot then duplicates the key of the
            // complete pair to its right, which readers defer to
            // (rightmost-duplicate rule in `find_in_leaf`).
            self.entries[i].key.store(nk, Ordering::Release);
            P::mark_dirty_obj(&self.entries[i].key);
            self.entries[i].val.store(nv, Ordering::Release);
            P::mark_dirty_obj(&self.entries[i].val);
            P::persist_obj(&self.entries[i], true);
            P::crash_site("fastfair.remove.step");
        }
        true
    }

    /// In-place value update for an existing key (lock must be held). Returns false if
    /// absent.
    pub fn update_value<P: PersistMode>(&self, mode: KeyMode, key: &[u8], val: u64) -> bool {
        let count = self.count();
        for i in 0..count {
            if cmp_word_key(mode, self.entries[i].key.load(Ordering::Acquire), key)
                == CmpOrdering::Equal
            {
                // A crash-persisted duplicate run is resolved by readers in
                // favour of its rightmost copy, so update that one.
                if i + 1 < count
                    && cmp_word_key(mode, self.entries[i + 1].key.load(Ordering::Acquire), key)
                        == CmpOrdering::Equal
                {
                    continue;
                }
                self.entries[i].val.store(val, Ordering::Release);
                P::mark_dirty_obj(&self.entries[i].val);
                P::persist_obj(&self.entries[i].val, true);
                return true;
            }
        }
        false
    }

    /// Whether `key` falls outside this node's key space (i.e. the reader/writer must
    /// follow the sibling pointer). `high_key == EMPTY` means unbounded.
    pub fn must_move_right(&self, mode: KeyMode, key: &[u8]) -> bool {
        let hk = self.high_key.load(Ordering::Acquire);
        if hk == EMPTY {
            return false;
        }
        cmp_word_key(mode, hk, key) != CmpOrdering::Greater
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe::key::u64_key;
    use recipe::persist::Dram;

    #[test]
    fn inline_key_words_preserve_order() {
        let a = encode_key::<Dram>(KeyMode::Inline, &u64_key(5));
        let b = encode_key::<Dram>(KeyMode::Inline, &u64_key(6));
        assert!(a < b);
        assert_eq!(cmp_word_key(KeyMode::Inline, a, &u64_key(5)), CmpOrdering::Equal);
        assert_eq!(word_to_bytes(KeyMode::Inline, a), u64_key(5).to_vec());
    }

    #[test]
    fn indirect_key_words_compare_bytes() {
        let a = encode_key::<Dram>(KeyMode::Indirect, b"apple");
        let b = encode_key::<Dram>(KeyMode::Indirect, b"banana");
        assert_eq!(cmp_words(KeyMode::Indirect, a, b), CmpOrdering::Less);
        assert_eq!(cmp_word_key(KeyMode::Indirect, b, b"banana"), CmpOrdering::Equal);
        assert_eq!(word_to_bytes(KeyMode::Indirect, a), b"apple".to_vec());
    }

    #[test]
    fn sorted_insert_and_lookup() {
        let n = Node::alloc(true);
        // SAFETY: freshly allocated.
        let node = unsafe { &*n };
        for k in [5u64, 1, 9, 3, 7] {
            let w = encode_key::<Dram>(KeyMode::Inline, &u64_key(k));
            node.insert_sorted::<Dram>(KeyMode::Inline, w, k * 10);
        }
        assert_eq!(node.count(), 5);
        for k in [1u64, 3, 5, 7, 9] {
            assert_eq!(node.find_in_leaf(KeyMode::Inline, &u64_key(k)), Some(k * 10));
        }
        assert_eq!(node.find_in_leaf(KeyMode::Inline, &u64_key(4)), None);
        // Entries must end up sorted.
        let words: Vec<u64> = (0..5).map(|i| node.entries[i].key.load(Ordering::Relaxed)).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        assert_eq!(words, sorted);
    }

    #[test]
    fn remove_shifts_left() {
        let n = Node::alloc(true);
        // SAFETY: freshly allocated.
        let node = unsafe { &*n };
        for k in 1..=6u64 {
            let w = encode_key::<Dram>(KeyMode::Inline, &u64_key(k));
            node.insert_sorted::<Dram>(KeyMode::Inline, w, k);
        }
        assert!(node.remove_sorted::<Dram>(KeyMode::Inline, &u64_key(3)));
        assert!(!node.remove_sorted::<Dram>(KeyMode::Inline, &u64_key(3)));
        assert_eq!(node.count(), 5);
        assert_eq!(node.find_in_leaf(KeyMode::Inline, &u64_key(3)), None);
        assert_eq!(node.find_in_leaf(KeyMode::Inline, &u64_key(6)), Some(6));
    }

    #[test]
    fn find_child_picks_covering_range() {
        let n = Node::alloc(false);
        // SAFETY: freshly allocated.
        let node = unsafe { &*n };
        node.leftmost.store(100, Ordering::Release);
        for (k, c) in [(10u64, 110u64), (20, 120), (30, 130)] {
            let w = encode_key::<Dram>(KeyMode::Inline, &u64_key(k));
            node.insert_sorted::<Dram>(KeyMode::Inline, w, c);
        }
        assert_eq!(node.find_child(KeyMode::Inline, &u64_key(5)), 100);
        assert_eq!(node.find_child(KeyMode::Inline, &u64_key(10)), 110);
        assert_eq!(node.find_child(KeyMode::Inline, &u64_key(25)), 120);
        assert_eq!(node.find_child(KeyMode::Inline, &u64_key(99)), 130);
    }

    /// Regression test for the crash-sweep flake the obs event ring caught
    /// (FAST&FAIR post-recovery `failed-ops=1..2`): a lock-free reader racing
    /// a FAST shift/plant (or a FAIR remove shift) must never observe a mixed
    /// (old key, new value) pair nor miss a key a remove shift moved below its
    /// cursor. The writer holds the node's `VersionLock` per operation, exactly
    /// as the tree does, and the reader uses the version-validated entry point.
    #[test]
    fn concurrent_reader_never_sees_mixed_pair() {
        let n = Node::alloc(true);
        // SAFETY: freshly allocated, lives for the whole test.
        let node = unsafe { &*n };
        for k in [10u64, 20, 30, 40] {
            let w = encode_key::<Dram>(KeyMode::Inline, &u64_key(k));
            node.insert_sorted::<Dram>(KeyMode::Inline, w, k * 100);
        }
        let poison = 9_999u64;
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Single writer: churn key 15 so both the insert plant at key
                // 20's slot and the remove shift over it run continuously
                // until the reader is done. Each op holds the node lock, as
                // `Tree::insert`/`Tree::remove` do.
                let w = encode_key::<Dram>(KeyMode::Inline, &u64_key(15));
                while !stop.load(Ordering::Acquire) {
                    {
                        let _g = node.lock.lock();
                        node.insert_sorted::<Dram>(KeyMode::Inline, w, poison);
                    }
                    {
                        let _g = node.lock.lock();
                        node.remove_sorted::<Dram>(KeyMode::Inline, &u64_key(15));
                    }
                }
            });
            let mut violation = None;
            'sweeps: for sweep in 0..400_000u64 {
                for k in [10u64, 20, 30, 40] {
                    let got = node.find_in_leaf_validated(KeyMode::Inline, &u64_key(k));
                    if got != Some(k * 100) {
                        violation = Some((sweep, k, got));
                        break 'sweeps;
                    }
                }
            }
            // Stop the writer before asserting so a failure doesn't hang the
            // scope join.
            stop.store(true, Ordering::Release);
            assert!(violation.is_none(), "reader observed a mixed pair: {violation:?}");
        });
    }

    /// Deterministic regression test for the same bug class: a crash between
    /// an insert's value and key stores (`fastfair.insert.value_written`)
    /// *persists* the mixed pair the concurrent test above races for — the
    /// planted slot still carries the shifted-up neighbour's key next to the
    /// new value, with the neighbour's complete pair duplicated one slot to
    /// the right. Readers must resolve the duplicate run rightward, updates
    /// must land on the copy readers resolve, and a remove must clear the
    /// whole run instead of resurrecting the stale copy.
    #[test]
    fn torn_insert_duplicate_run_is_resolved_rightward() {
        let n = Node::alloc(true);
        // SAFETY: freshly allocated.
        let node = unsafe { &*n };
        for k in [10u64, 20, 30, 40] {
            let w = encode_key::<Dram>(KeyMode::Inline, &u64_key(k));
            node.insert_sorted::<Dram>(KeyMode::Inline, w, k * 100);
        }
        // Replay an insert of key 15 interrupted at `insert.value_written`:
        // slots 1..=3 have been shifted up one, the new value is planted in
        // slot 1, but the crash hit before the new key overwrote the
        // duplicated key 20.
        for i in (1..4).rev() {
            let v = node.entries[i].val.load(Ordering::Acquire);
            let k = node.entries[i].key.load(Ordering::Acquire);
            node.entries[i + 1].val.store(v, Ordering::Release);
            node.entries[i + 1].key.store(k, Ordering::Release);
        }
        node.entries[1].val.store(9_999, Ordering::Release);

        assert_eq!(node.find_in_leaf(KeyMode::Inline, &u64_key(15)), None);
        assert_eq!(
            node.find_in_leaf(KeyMode::Inline, &u64_key(20)),
            Some(2_000),
            "reader must defer to the complete right copy, not the torn pair"
        );
        assert!(node.update_value::<Dram>(KeyMode::Inline, &u64_key(20), 2_222));
        assert_eq!(node.find_in_leaf(KeyMode::Inline, &u64_key(20)), Some(2_222));
        assert!(node.remove_sorted::<Dram>(KeyMode::Inline, &u64_key(20)));
        assert_eq!(
            node.find_in_leaf(KeyMode::Inline, &u64_key(20)),
            None,
            "remove must clear the whole duplicate run, not resurrect the stale copy"
        );
        for k in [10u64, 30, 40] {
            assert_eq!(node.find_in_leaf(KeyMode::Inline, &u64_key(k)), Some(k * 100));
        }
    }

    #[test]
    fn high_key_controls_move_right() {
        let n = Node::alloc(true);
        // SAFETY: freshly allocated.
        let node = unsafe { &*n };
        assert!(!node.must_move_right(KeyMode::Inline, &u64_key(u64::MAX - 1)));
        let hk = encode_key::<Dram>(KeyMode::Inline, &u64_key(50));
        node.high_key.store(hk, Ordering::Release);
        assert!(!node.must_move_right(KeyMode::Inline, &u64_key(49)));
        assert!(node.must_move_right(KeyMode::Inline, &u64_key(50)));
        assert!(node.must_move_right(KeyMode::Inline, &u64_key(51)));
    }
}
