//! Per-node linear models.
//!
//! A data node's model maps a fixed-width numeric *feature* of a key (eight key
//! bytes at the node's feature offset, big-endian) to a predicted slot index in
//! the node's gapped array. The model is trained by least squares over the
//! entries' feature/rank pairs at build time and is **only a heuristic**: the
//! search path compares full keys and galls outward from the prediction, so a
//! poor model costs probes (visible in [`pm::stats::Mapping::ApexNode`]), never
//! correctness.

/// A linear model `rank ≈ slope·x + intercept`, stretched from rank space
/// `[0, n)` to slot space `[0, cap)` of the gapped array it was trained for.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinearModel {
    slope: f64,
    intercept: f64,
    /// `cap / n`: how far ranks are spread over the gapped array.
    stretch: f64,
    /// Number of slots in the gapped array this model predicts into.
    cap: usize,
}

impl LinearModel {
    /// Train by least squares over `(feature, rank)` pairs. `xs` must be given
    /// in rank order (the caller's entries are sorted by key); `cap` is the
    /// gapped-array capacity predictions are stretched over.
    #[must_use]
    pub fn train(xs: &[u64], cap: usize) -> LinearModel {
        let n = xs.len();
        if n == 0 || cap == 0 {
            return LinearModel { slope: 0.0, intercept: 0.0, stretch: 1.0, cap: cap.max(1) };
        }
        let nf = n as f64;
        let xbar = xs.iter().map(|&x| x as f64).sum::<f64>() / nf;
        let ybar = (nf - 1.0) / 2.0;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (rank, &x) in xs.iter().enumerate() {
            let dx = x as f64 - xbar;
            sxx += dx * dx;
            sxy += dx * (rank as f64 - ybar);
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let intercept = ybar - slope * xbar;
        LinearModel { slope, intercept, stretch: cap as f64 / nf, cap }
    }

    /// Predicted slot index for feature `x`, clamped into `[0, cap)`.
    #[must_use]
    pub fn predict(&self, x: u64) -> usize {
        let max = (self.cap.max(1) - 1) as f64;
        let p = (self.slope * x as f64 + self.intercept) * self.stretch;
        // NaN (degenerate training data) clamps to slot 0 via the cast.
        p.clamp(0.0, max) as usize
    }

    /// Capacity this model predicts into.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_on_uniform_keys() {
        let xs: Vec<u64> = (0..100u64).map(|i| i * 10).collect();
        let m = LinearModel::train(&xs, 150);
        // A perfectly linear distribution should predict within one slot of the
        // stretched rank everywhere.
        for (rank, &x) in xs.iter().enumerate() {
            let want = (rank as f64 * 1.5) as isize;
            let got = m.predict(x) as isize;
            assert!((got - want).abs() <= 1, "rank {rank}: predicted {got}, want ~{want}");
        }
    }

    #[test]
    fn degenerate_inputs_stay_in_bounds() {
        for xs in [vec![], vec![7u64], vec![5, 5, 5, 5]] {
            let m = LinearModel::train(&xs, 10);
            for x in [0u64, 5, u64::MAX] {
                assert!(m.predict(x) < 10);
            }
        }
        // Extreme features on a trained model saturate instead of panicking.
        let m = LinearModel::train(&[1, 2, 3], 8);
        assert!(m.predict(u64::MAX) < 8);
        assert_eq!(m.predict(0), 0);
    }

    #[test]
    fn predictions_are_monotone_for_increasing_features() {
        let xs: Vec<u64> = (0..50u64).map(|i| i * i * 97).collect();
        let m = LinearModel::train(&xs, 80);
        let mut last = 0usize;
        for &x in &xs {
            let p = m.predict(x);
            assert!(p >= last || p + 2 >= last, "prediction collapsed at {x}");
            last = p;
        }
    }
}
