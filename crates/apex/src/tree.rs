//! The APEX tree: a sorted node directory over data nodes, with merge/retrain
//! and split SMOs published as ordered atomic steps.
//!
//! # Concurrency
//!
//! The directory (`nodes`: lower bound → data node, sorted) lives under a tree
//! `RwLock`; each data node has its own `RwLock`. Operations take the tree lock
//! shared and the target node's lock (shared for reads, exclusive for writes),
//! so writers to different data nodes proceed in parallel. SMOs take the tree
//! lock exclusive. Lock order is always tree → node, so there are no cycles.
//!
//! # The SMO protocol and its crash story
//!
//! When a node's insert buffer fills, the tree merges buffer and gapped array
//! into one (or, past [`NODE_MAX`], two) freshly trained nodes. The merge is
//! published as ordered atomic steps, each followed by a flush/fence and a
//! named crash site:
//!
//! 1. **build** — the replacement node(s) are fully constructed aside and
//!    persisted under one coalesced fence (`apex.smo.built`). A crash here
//!    leaks the aside nodes (the PM allocator's GC reclaims them, §4.2 of the
//!    paper) and the old node stays live: nothing to repair.
//! 2. **log** — a redo record (old bound → replacements) is persisted in the
//!    tree header (`apex.smo.logged`). From this point the SMO is decided.
//! 3. **swap** — the directory entry is spliced to the replacements and the
//!    directory persisted (`apex.smo.swapped`).
//! 4. **clear** — the redo record is cleared (`apex.smo.cleared`).
//!
//! [`Apex::recover`] replays a logged-but-uncleared record idempotently
//! (emitting `apex.recover.redone`), which completes a torn retrain; an
//! unlogged one rolls back by construction. Torn *inserts* need no tree-level
//! repair: a buffer slot whose commit bit never made it durable is free space
//! (see `node.rs`).

use crate::node::{NodeInner, NODE_MAX};
use parking_lot::RwLock;
use pm::stats;
use recipe::persist::PersistMode;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A directory entry: the lowest key the node can hold, and the node.
type DirEntry = (Box<[u8]>, Arc<RwLock<NodeInner>>);

/// Redo record of an in-flight merge/split SMO.
#[derive(Debug)]
struct PendingSmo {
    /// Lower bound of the node being replaced.
    lo: Box<[u8]>,
    /// Its replacement entries (1 for a retrain, 2 for a split).
    replacement: Vec<DirEntry>,
}

/// Tree state guarded by the tree lock.
#[derive(Debug)]
struct TreeInner {
    /// Data nodes, sorted by lower bound; `nodes[0]` is bounded by the empty
    /// key, so every key has a home.
    nodes: Vec<DirEntry>,
    /// Redo record of an in-flight SMO (`None` whenever the lock is free).
    pending: Option<PendingSmo>,
}

impl TreeInner {
    /// Index of the node owning `key`.
    fn locate(&self, key: &[u8]) -> usize {
        match self.nodes.binary_search_by(|(b, _)| b.as_ref().cmp(key)) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Persist the node directory (bounds + node pointers).
    fn persist_nodes<P: PersistMode>(&self) {
        let (p, l) = (self.nodes.as_ptr().cast::<u8>(), std::mem::size_of_val(&*self.nodes));
        P::mark_dirty(p, l);
        P::persist_range(p, l, true);
    }

    /// Persist the SMO redo record.
    fn persist_pending<P: PersistMode>(&self) {
        P::mark_dirty_obj(&self.pending);
        P::persist_obj(&self.pending, false);
        if let Some(p) = &self.pending {
            P::mark_dirty(p.lo.as_ptr(), p.lo.len());
            P::persist_range(p.lo.as_ptr(), p.lo.len(), false);
            let (rp, rl) =
                (p.replacement.as_ptr().cast::<u8>(), std::mem::size_of_val(&*p.replacement));
            P::mark_dirty(rp, rl);
            P::persist_range(rp, rl, false);
        }
        P::fence();
    }
}

/// The PM-native learned index: per-node linear models over gapped arrays,
/// with insert buffering. See the crate docs for the design.
#[derive(Debug)]
pub struct Apex<P: PersistMode> {
    inner: RwLock<TreeInner>,
    len: AtomicUsize,
    _policy: PhantomData<P>,
}

impl<P: PersistMode> Default for Apex<P> {
    fn default() -> Self {
        Apex::new()
    }
}

impl<P: PersistMode> Apex<P> {
    /// Create an empty index (one empty data node bounded by the empty key).
    #[must_use]
    pub fn new() -> Apex<P> {
        let root = NodeInner::build(Vec::new());
        let inner = TreeInner {
            nodes: vec![(Box::from(&[][..]), Arc::new(RwLock::new(root)))],
            pending: None,
        };
        let t = Apex { inner: RwLock::new(inner), len: AtomicUsize::new(0), _policy: PhantomData };
        {
            let tree = t.inner.read();
            tree.nodes[0].1.read().persist_all::<P>();
            tree.persist_nodes::<P>();
        }
        t
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the index holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of data nodes (directory width); structural evidence for tests.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Upsert. Returns `true` if the key was new, `false` if its value was
    /// overwritten in place.
    pub fn insert(&self, key: &[u8], value: u64) -> bool {
        loop {
            let full_at: Box<[u8]>;
            {
                let tree = self.inner.read();
                stats::record_node_visit();
                let idx = tree.locate(key);
                let mut n = tree.nodes[idx].1.write();
                stats::record_node_visit();
                match n.search(key) {
                    crate::node::Found::Absent => {
                        if n.buf_has_space() {
                            n.buf_insert::<P>(key, value);
                            self.len.fetch_add(1, Ordering::Relaxed);
                            return true;
                        }
                    }
                    hit => {
                        n.set_value::<P>(hit, value);
                        return false;
                    }
                }
                full_at = tree.nodes[idx].0.clone();
            }
            // Buffer full: merge/retrain under the exclusive tree lock, then
            // retry against the rebuilt (possibly split) node.
            self.merge_at(&full_at);
        }
    }

    /// Point lookup.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let tree = self.inner.read();
        stats::record_node_visit();
        let idx = tree.locate(key);
        let n = tree.nodes[idx].1.read();
        stats::record_node_visit();
        let hit = n.search(key);
        n.value_of(hit)
    }

    /// Conditional update: store `value` only if `key` is present, atomically
    /// under the node's write lock. Returns whether the key was present.
    pub fn update(&self, key: &[u8], value: u64) -> bool {
        let tree = self.inner.read();
        stats::record_node_visit();
        let idx = tree.locate(key);
        let mut n = tree.nodes[idx].1.write();
        stats::record_node_visit();
        match n.search(key) {
            crate::node::Found::Absent => false,
            hit => {
                n.set_value::<P>(hit, value);
                true
            }
        }
    }

    /// Remove `key`. Returns whether it was present.
    pub fn remove(&self, key: &[u8]) -> bool {
        let tree = self.inner.read();
        stats::record_node_visit();
        let idx = tree.locate(key);
        let mut n = tree.nodes[idx].1.write();
        stats::record_node_visit();
        match n.search(key) {
            crate::node::Found::Absent => false,
            hit => {
                n.remove_at::<P>(hit);
                self.len.fetch_sub(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// Append up to `max` entries with keys `>= start`, ascending, to `out`.
    pub fn scan_into(&self, start: &[u8], max: usize, out: &mut Vec<(Vec<u8>, u64)>) {
        if max == 0 {
            return;
        }
        let tree = self.inner.read();
        stats::record_node_visit();
        let target = out.len() + max;
        let mut idx = tree.locate(start);
        while idx < tree.nodes.len() && out.len() < target {
            stats::record_node_visit();
            tree.nodes[idx].1.read().collect_into(start, target - out.len(), out);
            idx += 1;
        }
    }

    /// Range scan convenience wrapper over [`Apex::scan_into`].
    #[must_use]
    pub fn scan(&self, start: &[u8], max: usize) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        self.scan_into(start, max, &mut out);
        out
    }

    /// Merge the node bounded by `lo`: drain its buffer into a freshly trained
    /// gapped array, splitting if it outgrew [`NODE_MAX`]. No-op if a racing
    /// writer already merged it.
    fn merge_at(&self, lo: &[u8]) {
        let mut tree = self.inner.write();
        let Some(idx) = tree.nodes.iter().position(|(b, _)| b.as_ref() == lo) else { return };
        let node = Arc::clone(&tree.nodes[idx].1);
        let mut entries = {
            let n = node.read();
            if n.buf_has_space() {
                return; // racing writer got here first
            }
            n.merge_entries()
        };
        // Step 1: build the replacement node(s) fully aside; one coalesced
        // fence makes the whole batch durable at once.
        let parts: Vec<DirEntry> = {
            let _epoch = pm::flush::coalesce_fences();
            let halves = if entries.len() > NODE_MAX {
                let right = entries.split_off(entries.len() / 2);
                vec![entries, right]
            } else {
                vec![entries]
            };
            halves
                .into_iter()
                .enumerate()
                .map(|(i, es)| {
                    let bound: Box<[u8]> =
                        if i == 0 { lo.into() } else { Box::from(es[0].key.as_ref()) };
                    let built = NodeInner::build(es);
                    built.persist_all::<P>();
                    (bound, Arc::new(RwLock::new(built)))
                })
                .collect()
        };
        P::crash_site("apex.smo.built");
        // Step 2: log the redo record.
        tree.pending = Some(PendingSmo { lo: lo.into(), replacement: parts.clone() });
        tree.persist_pending::<P>();
        P::crash_site("apex.smo.logged");
        // Step 3: swap the directory entry.
        tree.nodes.splice(idx..=idx, parts);
        tree.persist_nodes::<P>();
        P::crash_site("apex.smo.swapped");
        // Step 4: clear the record.
        tree.pending = None;
        tree.persist_pending::<P>();
        P::crash_site("apex.smo.cleared");
    }

    /// Post-crash recovery: replay a logged-but-uncleared SMO (idempotently)
    /// and recount the live keys. Uncommitted buffer slots need no repair —
    /// their commit bits never became durable, so they are free space.
    pub fn recover(&self) {
        let mut tree = self.inner.write();
        if let Some(p) = tree.pending.take() {
            if let Some(idx) = tree.nodes.iter().position(|(b, _)| *b == p.lo) {
                if !Arc::ptr_eq(&tree.nodes[idx].1, &p.replacement[0].1) {
                    // Crash landed between log and swap: complete the swap.
                    tree.nodes.splice(idx..=idx, p.replacement);
                }
            }
            tree.persist_nodes::<P>();
            tree.persist_pending::<P>();
            P::crash_site("apex.recover.redone");
        }
        let count: usize = tree.nodes.iter().map(|(_, n)| n.read().live_total()).sum();
        self.len.store(count, Ordering::Relaxed);
        // Keep the buffer headroom invariant: a crash can strand a node with a
        // full buffer and no in-flight SMO; finish its merge now.
        let full: Vec<Box<[u8]>> = tree
            .nodes
            .iter()
            .filter(|(_, n)| !n.read().buf_has_space())
            .map(|(b, _)| b.clone())
            .collect();
        drop(tree);
        for lo in full {
            self.merge_at(&lo);
        }
    }
}
