//! # P-APEX — a compact PM-native learned index
//!
//! Every other index in this workspace is either a RECIPE-*converted* classic
//! DRAM index or a hand-crafted persistent B+ tree/hash table. This crate is
//! the missing experimental condition: a ground-up **PM-native learned index**
//! in the style of APEX (a PM-optimized ALEX), evaluated on the same calibrated
//! latency model, figures, and §5 crash methodology as everything else.
//!
//! The design, compacted to its PM-relevant essentials:
//!
//! * **Gapped arrays with per-node linear models.** Each data node trains a
//!   least-squares line from key features to slot positions and places its
//!   entries at the predicted slots, gaps between. Lookups probe the predicted
//!   slot and gallop outward (bounded exponential search); the probe count —
//!   [`pm::stats::Mapping::ApexNode`] — is a direct, wall-clock-free measure of
//!   model accuracy.
//! * **Insert buffering.** Writes land in a small per-node buffer with a
//!   two-step durable publish (slot bytes → commit bit), a constant two
//!   flush/fence pairs per insert — no FAST-style shifting. A full buffer
//!   triggers a merge/retrain SMO that drains it under a single coalesced
//!   fence.
//! * **Crash consistency.** Commit bitmaps make torn inserts/removes roll back
//!   by construction; merge/retrain/split SMOs are published as ordered atomic
//!   steps (`apex.smo.*` crash sites) behind a redo record, and
//!   [`Apex::recover`] completes or rolls back a torn retrain.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod model;
pub mod node;
pub mod tree;

pub use tree::Apex;

/// Every crash site this crate can emit, for the §5 per-site exhaustive sweep.
pub const CRASH_SITES: &[&str] = &[
    "apex.insert.slot_written",
    "apex.insert.committed",
    "apex.update.committed",
    "apex.remove.committed",
    "apex.smo.built",
    "apex.smo.logged",
    "apex.smo.swapped",
    "apex.smo.cleared",
    "apex.recover.redone",
];

use recipe::index::Recoverable;
use recipe::persist::{Dram, PersistMode, Pmem};
use recipe::session::{Capabilities, Index, OpError, OpResult};

/// The persistent learned index (the configuration in the figures).
pub type PApex = Apex<Pmem>;
/// The same structure with persistence compiled out (DRAM-policy alias).
pub type DramApex = Apex<Dram>;

/// What this index supports. `linearizable_update` is `true`: the conditional
/// check-and-write runs under the owning data node's write lock.
pub const CAPS: Capabilities = Capabilities::ordered_index(true);

impl<P: PersistMode> Index for Apex<P> {
    fn exec_insert(&self, key: &[u8], value: u64) -> Result<OpResult, OpError> {
        if Apex::insert(self, key, value) {
            Ok(OpResult::Inserted)
        } else {
            Ok(OpResult::Updated)
        }
    }

    fn exec_update(&self, key: &[u8], value: u64) -> Result<OpResult, OpError> {
        if Apex::update(self, key, value) {
            Ok(OpResult::Updated)
        } else {
            Err(OpError::NotFound)
        }
    }

    fn exec_get(&self, key: &[u8]) -> Option<u64> {
        Apex::get(self, key)
    }

    fn exec_remove(&self, key: &[u8]) -> Result<OpResult, OpError> {
        if Apex::remove(self, key) {
            Ok(OpResult::Removed)
        } else {
            Err(OpError::NotFound)
        }
    }

    fn exec_scan_chunk(&self, start: &[u8], max: usize, out: &mut Vec<(Vec<u8>, u64)>) {
        Apex::scan_into(self, start, max, out);
    }

    fn capabilities(&self) -> Capabilities {
        CAPS
    }

    fn index_name(&self) -> String {
        if P::PERSISTENT {
            "P-APEX".into()
        } else {
            "APEX(dram)".into()
        }
    }
}

impl<P: PersistMode> Recoverable for Apex<P> {
    fn recover(&self) {
        Apex::recover(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm::crash;
    use recipe::key::u64_key;
    use std::collections::BTreeMap;
    use std::panic::AssertUnwindSafe;
    use std::sync::Arc;

    #[test]
    fn insert_get_integer_keys() {
        let t: PApex = Apex::new();
        for i in 0..20_000u64 {
            assert!(t.insert(&u64_key(i), i * 2), "insert {i}");
        }
        for i in 0..20_000u64 {
            assert_eq!(t.get(&u64_key(i)), Some(i * 2), "get {i}");
        }
        assert_eq!(t.get(&u64_key(20_000)), None);
        assert_eq!(t.len(), 20_000);
        assert!(t.node_count() > 20_000 / (node::NODE_MAX + node::BUF_CAP), "splits happened");
    }

    #[test]
    fn insert_is_upsert() {
        let t: PApex = Apex::new();
        assert!(t.insert(&u64_key(7), 1));
        assert!(!t.insert(&u64_key(7), 2));
        assert_eq!(t.get(&u64_key(7)), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn string_keys_round_trip() {
        let t: PApex = Apex::new();
        let mut model = BTreeMap::new();
        for i in 0..5_000u64 {
            let key = format!("user{:020}", i * 37 % 5_000);
            let newly = model.insert(key.clone().into_bytes(), i).is_none();
            assert_eq!(t.insert(key.as_bytes(), i), newly, "key {key}");
        }
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(*v));
        }
    }

    #[test]
    fn remove_keeps_other_keys() {
        let t: PApex = Apex::new();
        for i in 0..2_000u64 {
            t.insert(&u64_key(i), i);
        }
        for i in (0..2_000u64).step_by(3) {
            assert!(t.remove(&u64_key(i)));
            assert!(!t.remove(&u64_key(i)), "double remove");
        }
        for i in 0..2_000u64 {
            let expect = if i % 3 == 0 { None } else { Some(i) };
            assert_eq!(t.get(&u64_key(i)), expect, "key {i}");
        }
        // Removed keys can be re-inserted.
        assert!(t.insert(&u64_key(0), 77));
        assert_eq!(t.get(&u64_key(0)), Some(77));
    }

    #[test]
    fn scan_matches_btreemap_across_node_boundaries() {
        let t: PApex = Apex::new();
        let mut model = BTreeMap::new();
        for i in 0..5_000u64 {
            let k = u64_key(i * 11);
            t.insert(&k, i);
            model.insert(k.to_vec(), i);
        }
        for start in [0u64, 10, 5_000, 54_989, 60_000] {
            let sk = u64_key(start);
            let got = t.scan(&sk, 40);
            let want: Vec<(Vec<u8>, u64)> =
                model.range(sk.to_vec()..).take(40).map(|(k, v)| (k.clone(), *v)).collect();
            assert_eq!(got, want, "scan from {start}");
        }
        // Buffered (not yet merged) entries appear in scans too.
        t.insert(&u64_key(1), 991);
        let got = t.scan(&u64_key(0), 2);
        assert_eq!(got[0], (u64_key(0).to_vec(), 0));
        assert_eq!(got[1], (u64_key(1).to_vec(), 991));
    }

    #[test]
    fn mixed_workload_matches_model() {
        let t: PApex = Apex::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut gen = crashtest_like_mix(13);
        for i in 0..30_000u64 {
            match gen(i) {
                (0, k, v) => {
                    assert_eq!(
                        t.insert(&u64_key(k), v),
                        model.insert(u64_key(k).to_vec(), v).is_none()
                    );
                }
                (1, k, v) => {
                    let present = model.contains_key(u64_key(k).as_slice());
                    assert_eq!(t.update(&u64_key(k), v), present);
                    if present {
                        model.insert(u64_key(k).to_vec(), v);
                    }
                }
                (_, k, _) => {
                    assert_eq!(
                        t.remove(&u64_key(k)),
                        model.remove(u64_key(k).as_slice()).is_some()
                    );
                }
            }
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(*v));
        }
        let got = t.scan(&[], 1_000_000);
        assert_eq!(got.len(), model.len());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "scan sorted, no duplicates");
    }

    /// A small deterministic mixed-op generator (op, key, value).
    fn crashtest_like_mix(seed: u64) -> impl FnMut(u64) -> (u8, u64, u64) {
        let mut state = seed | 1;
        move |i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = state >> 33;
            let op = match r % 10 {
                0..=5 => 0,
                6..=7 => 1,
                _ => 2,
            };
            (op, r % 3_000, i | 1)
        }
    }

    #[test]
    fn concurrent_inserts_keep_all_keys() {
        let t: Arc<PApex> = Arc::new(Apex::new());
        let threads = 8u64;
        let per = 3_000u64;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let k = tid * per + i;
                    assert!(t.insert(&u64_key(k), k));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for k in 0..threads * per {
            assert_eq!(t.get(&u64_key(k)), Some(k), "key {k} lost");
        }
        assert_eq!(t.len(), (threads * per) as usize);
    }

    #[test]
    fn buffered_inserts_flush_a_constant_two_fences() {
        let t: PApex = Apex::new();
        // Warm up until just after a merge so the measured window is merge-free.
        for i in 0..node::BUF_CAP as u64 + 1 {
            t.insert(&u64_key(i), i);
        }
        let before = pm::stats::snapshot_local();
        for i in 0..32u64 {
            t.insert(&u64_key(1_000 + i), i);
        }
        let d = pm::stats::snapshot_local().since(&before);
        assert_eq!(d.fence, 64, "2 fences per buffered insert");
        assert!(d.clwb <= 4 * 32, "constant clwb per buffered insert, got {}", d.clwb);
    }

    #[test]
    fn amortized_flushes_beat_a_shift_based_baseline() {
        // The headline APEX claim, counter-attributed: buffered inserts plus
        // amortized merges must undercut FAST & FAIR's shift-based inserts on
        // the very same key sequence.
        let t: PApex = Apex::new();
        let before = pm::stats::snapshot_local();
        for i in 0..10_000u64 {
            t.insert(&u64_key(i * 7 % 10_000), i);
        }
        let apex_d = pm::stats::snapshot_local().since(&before);
        let f: fastfair::PFastFair = fastfair::FastFair::new();
        let before = pm::stats::snapshot_local();
        for i in 0..10_000u64 {
            f.insert(&u64_key(i * 7 % 10_000), i);
        }
        let fair_d = pm::stats::snapshot_local().since(&before);
        assert!(
            apex_d.clwb < fair_d.clwb,
            "APEX clwb/insert {:.2} should beat FAST&FAIR {:.2}",
            apex_d.clwb as f64 / 10_000.0,
            fair_d.clwb as f64 / 10_000.0
        );
    }

    #[test]
    fn probes_attribute_to_the_apex_mapping() {
        use pm::stats::Mapping;
        let t: PApex = Apex::new();
        for i in 0..2_000u64 {
            t.insert(&u64_key(i * 3), i);
        }
        let before = pm::stats::probes_local();
        for i in 0..2_000u64 {
            assert_eq!(t.get(&u64_key(i * 3)), Some(i));
        }
        let d = pm::stats::probes_local().since(&before);
        assert!(d.get(Mapping::ApexNode) >= 2_000, "every lookup probes at least once");
        assert_eq!(d.total(), d.get(Mapping::ApexNode), "no foreign mapping charged");
        // Model-predicted probing should average far below node occupancy.
        let per_lookup = d.get(Mapping::ApexNode) as f64 / 2_000.0;
        assert!(per_lookup < 16.0, "expected model-guided probes, got {per_lookup}/lookup");
    }

    #[test]
    fn dram_mode_is_flush_free() {
        let t: DramApex = Apex::new();
        let before = pm::stats::snapshot_local();
        for i in 0..500u64 {
            t.insert(&u64_key(i), i);
        }
        t.remove(&u64_key(3));
        t.update(&u64_key(4), 9);
        let d = pm::stats::snapshot_local().since(&before);
        assert_eq!((d.clwb, d.fence), (0, 0));
        assert_eq!(t.index_name(), "APEX(dram)");
    }

    #[test]
    fn trait_object_and_recover() {
        use recipe::session::IndexExt;
        let t: PApex = Apex::new();
        let idx: &dyn Index = &t;
        let mut h = idx.handle();
        assert_eq!(h.insert(&u64_key(1), 5), Ok(OpResult::Inserted));
        assert_eq!(h.update(&u64_key(1), 6), Ok(OpResult::Updated));
        assert_eq!(h.update(&u64_key(2), 6), Err(OpError::NotFound));
        assert_eq!(h.index_name(), "P-APEX");
        assert!(h.capabilities().scan && h.capabilities().linearizable_update);
        t.recover();
        assert_eq!(t.get(&u64_key(1)), Some(6));
    }

    /// Drive inserts until the armed crash site fires, then recover and verify
    /// every acknowledged key (the torn op's key is exempt: unacknowledged).
    fn crash_at_site_then_recover(site: &'static str) {
        crash::install_quiet_hook();
        let t: PApex = Apex::new();
        let mut acked: BTreeMap<u64, u64> = BTreeMap::new();
        crash::arm_at_site(site, 1);
        let mut crashed = false;
        for i in 0..3 * node::NODE_MAX as u64 {
            // Mix in updates and removes so every site is reachable.
            let r = crash::catch_crash(AssertUnwindSafe(|| {
                t.insert(&u64_key(i), i + 1);
                if i % 5 == 4 {
                    t.update(&u64_key(i / 2), i);
                }
                if i % 7 == 6 {
                    t.remove(&u64_key(i / 3));
                }
            }));
            match r {
                Ok(()) => {
                    acked.insert(i, i + 1);
                    if i % 5 == 4 && acked.contains_key(&(i / 2)) {
                        acked.insert(i / 2, i);
                    }
                    if i % 7 == 6 {
                        acked.remove(&(i / 3));
                    }
                }
                Err(at) => {
                    assert_eq!(at, site, "crashed at the armed site");
                    // Every key the torn op may have touched is unacknowledged:
                    // both outcomes are legal for it (same rule as the sweep).
                    acked.remove(&i);
                    acked.remove(&(i / 2));
                    acked.remove(&(i / 3));
                    crashed = true;
                    break;
                }
            }
        }
        assert!(crashed, "site {site} was never reached by the driver load");
        crash::disarm();
        t.recover();
        for (k, v) in &acked {
            assert_eq!(t.get(&u64_key(*k)), Some(*v), "key {k} after crash at {site}");
        }
        // The index stays fully writable after recovery.
        for i in 10_000..10_000 + node::BUF_CAP as u64 * 2 {
            t.insert(&u64_key(i), i);
            assert_eq!(t.get(&u64_key(i)), Some(i));
        }
        // The torn op may or may not have committed its key, so the exact count
        // is only bounded, not pinned.
        assert!(t.len() >= acked.len() + node::BUF_CAP * 2);
    }

    #[test]
    fn crash_then_recover_at_insert_slot_written() {
        crash_at_site_then_recover("apex.insert.slot_written");
    }

    #[test]
    fn crash_then_recover_at_insert_committed() {
        crash_at_site_then_recover("apex.insert.committed");
    }

    #[test]
    fn crash_then_recover_at_update_committed() {
        crash_at_site_then_recover("apex.update.committed");
    }

    #[test]
    fn crash_then_recover_at_remove_committed() {
        crash_at_site_then_recover("apex.remove.committed");
    }

    #[test]
    fn crash_then_recover_at_smo_built() {
        crash_at_site_then_recover("apex.smo.built");
    }

    #[test]
    fn crash_then_recover_at_smo_logged() {
        crash_at_site_then_recover("apex.smo.logged");
    }

    #[test]
    fn crash_then_recover_at_smo_swapped() {
        crash_at_site_then_recover("apex.smo.swapped");
    }

    #[test]
    fn crash_then_recover_at_smo_cleared() {
        crash_at_site_then_recover("apex.smo.cleared");
    }

    #[test]
    fn recovery_replays_a_logged_smo() {
        // Crash between log and swap, then verify recover() emits the redo
        // helper site and completes the split: the torn SMO's keys survive.
        crash::install_quiet_hook();
        crash::start_named_counts();
        let t: PApex = Apex::new();
        crash::arm_at_site("apex.smo.logged", 1);
        let mut acked = 0u64;
        for i in 0..2 * node::NODE_MAX as u64 {
            let r = crash::catch_crash(AssertUnwindSafe(|| {
                t.insert(&u64_key(i), i);
            }));
            match r {
                Ok(()) => acked = i + 1,
                Err(site) => {
                    assert_eq!(site, "apex.smo.logged");
                    break;
                }
            }
        }
        crash::disarm();
        crash::arm_count_only();
        let redone_before = crash::named_count("apex.recover.redone");
        t.recover();
        assert_eq!(
            crash::named_count("apex.recover.redone"),
            redone_before + 1,
            "recovery replayed the logged SMO"
        );
        crash::disarm();
        for i in 0..acked {
            assert_eq!(t.get(&u64_key(i)), Some(i), "key {i} lost in torn retrain");
        }
        crash::stop_named_counts();
    }

    #[test]
    fn declared_sites_match_emitted_sites() {
        // Every site the crate can emit is declared, and a mixed load plus a
        // torn-SMO recovery emits every declared site (the same two-directional
        // coverage contract the sweep enforces).
        crash::install_quiet_hook();
        crash::start_named_counts();
        crash::arm_count_only();
        {
            let t: PApex = Apex::new();
            for i in 0..3 * node::NODE_MAX as u64 {
                t.insert(&u64_key(i % 700), i);
                if i % 3 == 0 {
                    t.update(&u64_key(i % 700), i + 1);
                }
                if i % 5 == 0 {
                    t.remove(&u64_key((i + 2) % 700));
                }
            }
        }
        crash::disarm();
        // The redo helper only runs on a torn SMO; drive one.
        {
            let t: PApex = Apex::new();
            crash::arm_at_site("apex.smo.swapped", 1);
            for i in 0..2 * node::NODE_MAX as u64 {
                if crash::catch_crash(AssertUnwindSafe(|| {
                    t.insert(&u64_key(i), i);
                }))
                .is_err()
                {
                    break;
                }
            }
            crash::disarm();
            crash::arm_count_only();
            t.recover();
            crash::disarm();
        }
        let counts = crash::named_counts();
        for (name, _) in &counts {
            if name.starts_with("apex.") {
                assert!(CRASH_SITES.contains(name), "{name} emitted but not declared");
            }
        }
        for site in CRASH_SITES {
            assert!(
                counts.iter().any(|(n, c)| n == site && *c > 0),
                "{site} declared but never emitted"
            );
        }
        crash::stop_named_counts();
    }
}
