//! APEX data nodes: a gapped array under a linear model, plus an insert buffer.
//!
//! A data node stores its committed entries in a **gapped array**: entries are
//! placed at (approximately) the slot the node's [`LinearModel`] predicts for
//! their key, in key order, with the leftover capacity spread between them as
//! gaps. Lookups predict a slot and gallop outward with full-key comparisons
//! (a bounded exponential search), so model error costs probes — counted under
//! [`Mapping::ApexNode`] — never correctness.
//!
//! Writes never touch the gapped array. Inserts go to a small per-node
//! **buffer** with a two-step durable publish (slot bytes, then a commit bit in
//! the buffer's bitmap word), which is what makes a buffered insert cost a
//! constant two flush/fence pairs instead of a FAST-style shift. When the
//! buffer fills, the tree merges buffer and array into a freshly trained node
//! (see `tree.rs` for the SMO protocol). Removes clear the entry's commit bit;
//! the dead slot is reclaimed at the next merge.
//!
//! Commit bits are the single source of truth: a slot whose bit is clear is
//! free, and readers never look at its bytes. A crash between the two publish
//! steps therefore rolls the insert back by construction — there is nothing
//! for recovery to repair inside a node.

use crate::model::LinearModel;
use pm::stats::{self, Mapping};
use recipe::persist::PersistMode;
use std::cmp::Ordering;
use std::sync::Arc;

/// Committed entries a node may hold after a merge before it must split.
pub const NODE_MAX: usize = 256;
/// Insert-buffer capacity: one bitmap word's worth of slots.
pub const BUF_CAP: usize = 64;
/// Gapped-array stretch: capacity = entries × 10 / 7 (≈ 70% target density).
const GAP_NUM: usize = 10;
/// Denominator of the gapped-array stretch factor.
const GAP_DEN: usize = 7;
/// Smallest gapped-array capacity (fresh/near-empty nodes).
const MIN_CAP: usize = 16;

/// One key/value entry. Keys are shared immutable PM-heap allocations
/// (`Arc<[u8]>`), so a merge can move entries to a rebuilt node without
/// re-flushing key bytes that are already durable.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Full key bytes.
    pub key: Arc<[u8]>,
    /// Model feature: eight key bytes at the node's feature offset.
    pub knum: u64,
    /// Value.
    pub value: u64,
}

/// Where a search found its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Found {
    /// Live slot `i` of the gapped array.
    Gapped(usize),
    /// Live slot `i` of the insert buffer.
    Buffer(usize),
    /// Not present in this node.
    Absent,
}

/// A data node's contents, guarded by the per-node lock in `tree.rs`.
#[derive(Debug)]
pub struct NodeInner {
    /// Model mapping key features to predicted gapped-array slots.
    model: LinearModel,
    /// Byte offset keys are featurized at (the entries' common-prefix length
    /// at train time, so dense shared prefixes don't flatten the model).
    feat_off: usize,
    /// Gapped array; live slots appear in ascending key order by index.
    slots: Box<[Option<Slot>]>,
    /// Commit bitmap for `slots` (bit set ⇔ slot is live).
    live: Box<[u64]>,
    /// Insert buffer, searched linearly.
    buf: Box<[Option<Slot>]>,
    /// Commit bitmap for `buf`.
    buf_live: u64,
}

/// Eight key bytes at `off`, big-endian, zero-padded: a monotone (modulo
/// padding ties) numeric feature of the key's lexicographic position.
#[must_use]
pub fn feature(key: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    if off < key.len() {
        let tail = &key[off..];
        let n = tail.len().min(8);
        b[..n].copy_from_slice(&tail[..n]);
    }
    u64::from_be_bytes(b)
}

impl NodeInner {
    /// Build a freshly trained node from `entries`, which must be sorted by
    /// key and duplicate-free. Entries are re-featurized at the batch's
    /// common-prefix offset, the model is retrained, and every entry is placed
    /// at (or right of, on collision) its predicted slot.
    #[must_use]
    pub fn build(mut entries: Vec<Slot>) -> NodeInner {
        let n = entries.len();
        let feat_off = match (entries.first(), entries.last()) {
            (Some(a), Some(b)) => common_prefix(&a.key, &b.key),
            _ => 0,
        };
        for e in &mut entries {
            e.knum = feature(&e.key, feat_off);
        }
        let cap = (n * GAP_NUM / GAP_DEN).max(MIN_CAP);
        let feats: Vec<u64> = entries.iter().map(|e| e.knum).collect();
        let model = LinearModel::train(&feats, cap);
        let mut slots: Vec<Option<Slot>> = (0..cap).map(|_| None).collect();
        let mut live = vec![0u64; cap.div_ceil(64)];
        let mut next = 0usize;
        for (rank, e) in entries.into_iter().enumerate() {
            // Clamp so the remaining entries always fit to the right.
            let want = model.predict(e.knum).min(cap - (n - rank));
            let pos = want.max(next);
            live[pos / 64] |= 1 << (pos % 64);
            slots[pos] = Some(e);
            next = pos + 1;
        }
        NodeInner {
            model,
            feat_off,
            slots: slots.into_boxed_slice(),
            live: live.into_boxed_slice(),
            buf: (0..BUF_CAP).map(|_| None).collect(),
            buf_live: 0,
        }
    }

    /// Mark every region of this node dirty and flush it (keys excepted: their
    /// bytes were persisted when first inserted and are shared, not copied).
    /// The caller owns fencing — builds run inside a coalesced fence epoch.
    pub fn persist_all<P: PersistMode>(&self) {
        P::mark_dirty_obj(self);
        P::persist_obj(self, false);
        let (p, l) = (self.slots.as_ptr().cast::<u8>(), std::mem::size_of_val(&*self.slots));
        P::mark_dirty(p, l);
        P::persist_range(p, l, false);
        let (p, l) = (self.live.as_ptr().cast::<u8>(), std::mem::size_of_val(&*self.live));
        P::mark_dirty(p, l);
        P::persist_range(p, l, false);
        let (p, l) = (self.buf.as_ptr().cast::<u8>(), std::mem::size_of_val(&*self.buf));
        P::mark_dirty(p, l);
        P::persist_range(p, l, false);
    }

    #[inline]
    fn is_live(&self, i: usize) -> bool {
        self.live[i / 64] & (1 << (i % 64)) != 0
    }

    /// Greatest live gapped index `<= from`.
    fn prev_live(&self, from: usize) -> Option<usize> {
        (0..=from.min(self.slots.len() - 1)).rev().find(|&i| self.is_live(i))
    }

    fn slot_key(&self, i: usize) -> &[u8] {
        self.slots[i].as_ref().expect("live slot is populated").key.as_ref()
    }

    /// Number of live entries (gapped array + buffer).
    #[must_use]
    pub fn live_total(&self) -> usize {
        let gapped: u32 = self.live.iter().map(|w| w.count_ones()).sum();
        gapped as usize + self.buf_live.count_ones() as usize
    }

    /// Whether the insert buffer has a free slot.
    #[must_use]
    pub fn buf_has_space(&self) -> bool {
        self.buf_live != u64::MAX
    }

    /// Search the node for `key`. Every full-key comparison is one probe,
    /// recorded under [`Mapping::ApexNode`]; a perfectly predicting model on a
    /// buffer-resident-free node costs exactly one probe.
    #[must_use]
    pub fn search(&self, key: &[u8]) -> Found {
        let mut probes = 0u64;
        // Buffer first: it holds the most recent writes.
        let mut word = self.buf_live;
        while word != 0 {
            let i = word.trailing_zeros() as usize;
            word &= word - 1;
            probes += 1;
            let s = self.buf[i].as_ref().expect("live buffer slot is populated");
            if s.key.as_ref() == key {
                stats::record_probes(Mapping::ApexNode, probes);
                return Found::Buffer(i);
            }
        }
        let hit = self.gapped_find(key, &mut probes);
        stats::record_probes(Mapping::ApexNode, probes);
        match hit {
            Some(i) => Found::Gapped(i),
            None => Found::Absent,
        }
    }

    /// Model-predicted probe + bounded exponential (galloping) search over the
    /// gapped array. Relies on live slots being in ascending key order.
    fn gapped_find(&self, key: &[u8], probes: &mut u64) -> Option<usize> {
        let cap = self.slots.len();
        if cap == 0 {
            return None;
        }
        let p = self.model.predict(feature(key, self.feat_off)).min(cap - 1);
        // Invariants while searching: every live slot at index >= `hi` is
        // > key; `lo = Some(j)` means every live slot at index <= j is < key.
        let mut hi = cap;
        let mut lo: Option<usize> = None;
        // Gallop left from the prediction until an anchor <= key (or the edge).
        let mut i = p as isize;
        let mut step = 1isize;
        while i >= 0 {
            let Some(j) = self.prev_live(i as usize) else { break };
            *probes += 1;
            match self.slot_key(j).cmp(key) {
                Ordering::Equal => return Some(j),
                Ordering::Less => {
                    lo = Some(j);
                    break;
                }
                Ordering::Greater => {
                    hi = j;
                    i = j as isize - step;
                    step <<= 1;
                }
            }
        }
        // Gallop right to tighten `hi` when the model under-predicted.
        let mut base = lo.map_or(0, |j| j + 1);
        let mut rstep = 1usize;
        while base < hi {
            let Some(j) = (base..hi).find(|&i| self.is_live(i)) else { break };
            *probes += 1;
            match self.slot_key(j).cmp(key) {
                Ordering::Equal => return Some(j),
                Ordering::Greater => {
                    hi = j;
                    break;
                }
                Ordering::Less => {
                    lo = Some(j);
                    base = j + rstep;
                    rstep <<= 1;
                }
            }
        }
        // Galloping skips slots; sweep the remaining unknown window linearly.
        for k in lo.map_or(0, |j| j + 1)..hi {
            if self.is_live(k) {
                *probes += 1;
                match self.slot_key(k).cmp(key) {
                    Ordering::Equal => return Some(k),
                    Ordering::Greater => return None,
                    Ordering::Less => {}
                }
            }
        }
        None
    }

    /// Publish `key -> value` into a free buffer slot: write the slot, persist,
    /// then commit it with its bitmap bit (the insert's single atomic step).
    /// Caller must have checked [`NodeInner::buf_has_space`].
    pub fn buf_insert<P: PersistMode>(&mut self, key: &[u8], value: u64) {
        let i = (!self.buf_live).trailing_zeros() as usize;
        let slot = Slot { key: Arc::from(key), knum: feature(key, self.feat_off), value };
        // The key bytes are a fresh PM-heap allocation: persist them before
        // the slot that points at them.
        P::mark_dirty(slot.key.as_ptr(), slot.key.len());
        P::persist_range(slot.key.as_ptr(), slot.key.len(), false);
        self.buf[i] = Some(slot);
        P::mark_dirty_obj(&self.buf[i]);
        P::persist_obj(&self.buf[i], true);
        P::crash_site("apex.insert.slot_written");
        self.buf_live |= 1 << i;
        P::mark_dirty_obj(&self.buf_live);
        P::persist_obj(&self.buf_live, true);
        P::crash_site("apex.insert.committed");
    }

    /// Overwrite the value of a found entry in place (an 8-byte atomic store).
    pub fn set_value<P: PersistMode>(&mut self, at: Found, value: u64) {
        let v = match at {
            Found::Gapped(i) => &mut self.slots[i].as_mut().expect("live slot").value,
            Found::Buffer(i) => &mut self.buf[i].as_mut().expect("live buffer slot").value,
            Found::Absent => unreachable!("set_value requires a hit"),
        };
        *v = value;
        P::mark_dirty_obj(v);
        P::persist_obj(&*v, true);
        P::crash_site("apex.update.committed");
    }

    /// Value of a found entry.
    #[must_use]
    pub fn value_of(&self, at: Found) -> Option<u64> {
        match at {
            Found::Gapped(i) => self.slots[i].as_ref().map(|s| s.value),
            Found::Buffer(i) => self.buf[i].as_ref().map(|s| s.value),
            Found::Absent => None,
        }
    }

    /// Remove a found entry by clearing its commit bit (one atomic step); the
    /// dead slot's memory is reclaimed at the next merge.
    pub fn remove_at<P: PersistMode>(&mut self, at: Found) {
        match at {
            Found::Gapped(i) => {
                self.live[i / 64] &= !(1 << (i % 64));
                P::mark_dirty_obj(&self.live[i / 64]);
                P::persist_obj(&self.live[i / 64], true);
            }
            Found::Buffer(i) => {
                self.buf_live &= !(1 << i);
                P::mark_dirty_obj(&self.buf_live);
                P::persist_obj(&self.buf_live, true);
            }
            Found::Absent => unreachable!("remove_at requires a hit"),
        }
        P::crash_site("apex.remove.committed");
    }

    /// Every live entry (gapped array + buffer), sorted by key: the input of a
    /// merge. Keys are shared (`Arc`), not copied.
    #[must_use]
    pub fn merge_entries(&self) -> Vec<Slot> {
        let mut out: Vec<Slot> = Vec::with_capacity(self.live_total());
        for (i, s) in self.slots.iter().enumerate() {
            if self.is_live(i) {
                out.push(s.clone().expect("live slot is populated"));
            }
        }
        let mut word = self.buf_live;
        while word != 0 {
            let i = word.trailing_zeros() as usize;
            word &= word - 1;
            out.push(self.buf[i].clone().expect("live buffer slot is populated"));
        }
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Append up to `max` live entries with keys `>= start`, ascending, to
    /// `out` (a two-way merge of the sorted gapped array and the buffer).
    pub fn collect_into(&self, start: &[u8], max: usize, out: &mut Vec<(Vec<u8>, u64)>) {
        if max == 0 {
            return;
        }
        let mut buffered: Vec<&Slot> = Vec::with_capacity(self.buf_live.count_ones() as usize);
        let mut word = self.buf_live;
        while word != 0 {
            let i = word.trailing_zeros() as usize;
            word &= word - 1;
            let s = self.buf[i].as_ref().expect("live buffer slot is populated");
            if s.key.as_ref() >= start {
                buffered.push(s);
            }
        }
        buffered.sort_by(|a, b| a.key.cmp(&b.key));
        let mut bi = 0usize;
        let mut probes = 0u64;
        let target = out.len() + max;
        for (i, s) in self.slots.iter().enumerate() {
            if !self.is_live(i) {
                continue;
            }
            let s = s.as_ref().expect("live slot is populated");
            probes += 1;
            if s.key.as_ref() < start {
                continue;
            }
            while bi < buffered.len() && buffered[bi].key.as_ref() < s.key.as_ref() {
                out.push((buffered[bi].key.to_vec(), buffered[bi].value));
                bi += 1;
                if out.len() >= target {
                    stats::record_probes(Mapping::ApexNode, probes);
                    return;
                }
            }
            out.push((s.key.to_vec(), s.value));
            if out.len() >= target {
                stats::record_probes(Mapping::ApexNode, probes);
                return;
            }
        }
        while bi < buffered.len() && out.len() < target {
            out.push((buffered[bi].key.to_vec(), buffered[bi].value));
            bi += 1;
        }
        stats::record_probes(Mapping::ApexNode, probes);
    }
}

/// Length of the longest common prefix of two byte strings.
fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe::persist::{Dram, Pmem};

    fn slot(key: &[u8], value: u64) -> Slot {
        Slot { key: Arc::from(key), knum: 0, value }
    }

    fn built(keys: &[&[u8]]) -> NodeInner {
        let mut entries: Vec<Slot> =
            keys.iter().enumerate().map(|(i, k)| slot(k, i as u64)).collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        NodeInner::build(entries)
    }

    #[test]
    fn build_places_live_slots_in_key_order() {
        let keys: Vec<Vec<u8>> = (0..100u64).map(|i| (i * 17).to_be_bytes().to_vec()).collect();
        let n = built(&keys.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let mut last: Option<Vec<u8>> = None;
        let mut live = 0;
        for i in 0..n.slots.len() {
            if n.is_live(i) {
                let k = n.slot_key(i).to_vec();
                if let Some(prev) = &last {
                    assert!(*prev < k, "live slots out of order at {i}");
                }
                last = Some(k);
                live += 1;
            }
        }
        assert_eq!(live, 100);
        assert_eq!(n.live_total(), 100);
    }

    #[test]
    fn search_finds_every_built_entry_and_rejects_absent() {
        let keys: Vec<Vec<u8>> = (0..200u64).map(|i| (i * 3 + 1).to_be_bytes().to_vec()).collect();
        let n = built(&keys.iter().map(Vec::as_slice).collect::<Vec<_>>());
        for k in &keys {
            assert!(matches!(n.search(k), Found::Gapped(_)), "missing {k:?}");
        }
        for i in 0..200u64 {
            let absent = (i * 3).to_be_bytes();
            assert_eq!(n.search(&absent), Found::Absent, "phantom {absent:?}");
        }
    }

    #[test]
    fn shared_prefix_keys_stay_searchable() {
        // All keys share a long prefix; the feature offset must skip it or the
        // model flattens. Either way every key must remain findable.
        let keys: Vec<Vec<u8>> =
            (0..150u64).map(|i| format!("user{:020}", i * 7).into_bytes()).collect();
        let n = built(&keys.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert!(n.feat_off >= 4, "feature offset should skip the shared 'user' prefix");
        for k in &keys {
            assert!(matches!(n.search(k), Found::Gapped(_)));
        }
        assert_eq!(n.search(b"user99999999999999999999"), Found::Absent);
    }

    #[test]
    fn model_accuracy_is_visible_in_probe_counts() {
        // Uniform keys fit a linear model near-perfectly, so probes per hit
        // lookup should stay close to 1.
        let keys: Vec<Vec<u8>> =
            (0..NODE_MAX as u64).map(|i| (i * 64).to_be_bytes().to_vec()).collect();
        let n = built(&keys.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let before = stats::probes_local();
        for k in &keys {
            let _ = n.search(k);
        }
        let d = stats::probes_local().since(&before);
        let per_lookup = d.get(Mapping::ApexNode) as f64 / keys.len() as f64;
        assert!(per_lookup < 4.0, "uniform keys should probe ~1-2, got {per_lookup}");
        assert_eq!(d.total(), d.get(Mapping::ApexNode), "probes attributed to ApexNode");
    }

    #[test]
    fn buffer_insert_commits_with_two_flush_fence_pairs() {
        let mut n = built(&[]);
        let before = pm::stats::snapshot_local();
        n.buf_insert::<Pmem>(&7u64.to_be_bytes(), 70);
        let d = pm::stats::snapshot_local().since(&before);
        assert_eq!(d.fence, 2, "slot publish + commit bit");
        assert!(d.clwb >= 2 && d.clwb <= 4, "got {} clwb", d.clwb);
        assert_eq!(n.search(&7u64.to_be_bytes()), Found::Buffer(0));
        // The DRAM policy compiles the same path down to plain stores.
        let mut n = built(&[]);
        let before = pm::stats::snapshot_local();
        n.buf_insert::<Dram>(&7u64.to_be_bytes(), 70);
        let d = pm::stats::snapshot_local().since(&before);
        assert_eq!((d.clwb, d.fence), (0, 0));
    }

    #[test]
    fn uncommitted_buffer_slot_is_invisible() {
        // Simulate a crash between the two publish steps: slot written, commit
        // bit never set. The entry must not be readable and the slot must be
        // reused by the next insert.
        let mut n = built(&[]);
        let key = 9u64.to_be_bytes();
        n.buf[0] = Some(slot(&key, 99));
        assert_eq!(n.search(&key), Found::Absent);
        assert_eq!(n.live_total(), 0);
        n.buf_insert::<Dram>(&key, 42);
        assert_eq!(n.search(&key), Found::Buffer(0));
        assert_eq!(n.value_of(Found::Buffer(0)), Some(42));
    }

    #[test]
    fn merge_entries_sorts_and_drops_dead_slots() {
        let keys: Vec<Vec<u8>> = (0..40u64).map(|i| (i * 2).to_be_bytes().to_vec()).collect();
        let mut n = built(&keys.iter().map(Vec::as_slice).collect::<Vec<_>>());
        n.buf_insert::<Dram>(&41u64.to_be_bytes(), 41);
        n.buf_insert::<Dram>(&1u64.to_be_bytes(), 1);
        let at = n.search(&10u64.to_be_bytes());
        n.remove_at::<Dram>(at);
        let merged = n.merge_entries();
        assert_eq!(merged.len(), 41);
        assert!(merged.windows(2).all(|w| w[0].key < w[1].key), "merge output sorted");
        assert!(!merged.iter().any(|s| s.key.as_ref() == 10u64.to_be_bytes()));
        assert!(merged.iter().any(|s| s.key.as_ref() == 41u64.to_be_bytes()));
    }

    #[test]
    fn collect_into_merges_buffer_and_array_in_order() {
        let keys: Vec<Vec<u8>> = (0..30u64).map(|i| (i * 3).to_be_bytes().to_vec()).collect();
        let mut n = built(&keys.iter().map(Vec::as_slice).collect::<Vec<_>>());
        n.buf_insert::<Dram>(&4u64.to_be_bytes(), 104);
        n.buf_insert::<Dram>(&100u64.to_be_bytes(), 200);
        let mut out = Vec::new();
        n.collect_into(&3u64.to_be_bytes(), 5, &mut out);
        let got: Vec<u64> =
            out.iter().map(|(k, _)| u64::from_be_bytes(k[..8].try_into().unwrap())).collect();
        assert_eq!(got, vec![3, 4, 6, 9, 12]);
        // Exhausting the node returns fewer than max.
        let mut out = Vec::new();
        n.collect_into(&85u64.to_be_bytes(), 100, &mut out);
        let got: Vec<u64> =
            out.iter().map(|(k, _)| u64::from_be_bytes(k[..8].try_into().unwrap())).collect();
        assert_eq!(got, vec![87, 100]);
    }

    #[test]
    fn feature_is_monotone_on_equal_length_keys() {
        let mut feats: Vec<u64> =
            (0..500u64).map(|i| feature(&(i * 977).to_be_bytes(), 0)).collect();
        let sorted = feats.windows(2).all(|w| w[0] <= w[1]);
        assert!(sorted);
        feats.dedup();
        assert_eq!(feats.len(), 500);
        // Offsets skip shared prefixes.
        assert_eq!(feature(b"user0001", 4), feature(b"0001", 0));
        assert_eq!(feature(b"ab", 5), 0);
    }
}
