//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Exposes the subset of the rand 0.8 API this workspace uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`] — with a
//! deterministic xoshiro256** generator behind `StdRng`. Streams differ from
//! the real crate's (`StdRng` is documented as unstable across rand versions
//! anyway), but are stable across runs and platforms, which is what the
//! workspace's seeded workload generation relies on.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Generate a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Generate a uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        // 53 random mantissa bits, exactly the real crate's construction.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly ("standard" distribution).
pub trait Standard {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform draw from `[0, n)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

/// Pre-seeded generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(super::uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
            let x = rng.gen_range(0..100u32);
            assert!(x < 100);
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(11);
        // Must not panic or loop forever.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
