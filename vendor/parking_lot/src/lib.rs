//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, exposing the subset of its API this workspace uses with the same
//! semantics: guards are returned directly (no `Result`), and a panicking
//! lock-holder does not poison the lock for later acquirers.
//!
//! Backed by `std::sync` primitives; swap in the real crate by changing the
//! `parking_lot` entry in the workspace `[workspace.dependencies]`.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive. `lock()` returns the guard directly;
/// poisoning from a panicking holder is ignored, as in `parking_lot`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner) }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock. `read()`/`write()` return guards directly; poisoning
/// from a panicking holder is ignored, as in `parking_lot`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked reader-writer lock.
    #[must_use]
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
