//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate: deterministic randomized property testing over composable
//! [`Strategy`] values, with the `proptest!`, `prop_oneof!` and
//! `prop_assert*!` macros this workspace uses.
//!
//! Differences from the real crate, acceptable for a stand-in: failing cases
//! are *not* shrunk (the failing input is printed instead), and generation is
//! seeded deterministically per test (override with `PROPTEST_SEED`).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies during generation.
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeded generator (one per property-test function).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform draw from `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy so heterogeneous strategies can be unioned.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { gen: std::rc::Rc::new(move |rng| self.generate(rng)) }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy, returned by [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    #[allow(clippy::type_complexity)]
    gen: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Uniform choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of options.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// The canonical strategy for `Self`.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy produced by [`any`].
pub struct ArbitraryStrategy<T> {
    gen: fn(&mut TestRng) -> T,
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<Self> {
                ArbitraryStrategy {
                    #[allow(clippy::cast_possible_truncation)]
                    gen: |rng| rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> ArbitraryStrategy<Self> {
        ArbitraryStrategy { gen: |rng| rng.next_u64() & 1 == 1 }
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end - self.start);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = u64::from(end - start) + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}
impl_strategy_for_int_ranges!(u8, u16, u32);

macro_rules! impl_strategy_for_wide_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_strategy_for_wide_ranges!(u64, usize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths in `size`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Configuration accepted by `proptest!`'s `#![proptest_config(..)]` line.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility with the real crate; this stand-in does
    /// not shrink failing inputs, so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// Deterministic per-test seed: FNV-1a of the test path, overridable via the
/// `PROPTEST_SEED` environment variable.
#[must_use]
pub fn seed_for(test_path: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.trim().parse() {
            return v;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `body` for `config.cases` generated cases (used by `proptest!`).
pub fn run_cases(
    test_path: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng, u32),
) {
    let mut rng = TestRng::seed_from_u64(seed_for(test_path));
    for case in 0..config.cases {
        body(&mut rng, case);
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
    };
}

/// Assert inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        assert!($cond $(, $($fmt)*)?)
    };
}

/// Assert equality inside a property, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($left, $right $(, $($fmt)*)?)
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..) { .. }`
/// becomes a normal `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(concat!(module_path!(), "::", stringify!($name)), &config, |rng, case| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, rng);)+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case} failed for {}:",
                            stringify!($name),
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        ::std::panic::resume_unwind(panic);
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn union_picks_all_branches() {
        let s = prop_oneof![0u32..1, 10u32..11, 20u32..21];
        let mut rng = TestRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, [0u32, 10, 20].into_iter().collect());
    }

    #[test]
    fn vec_strategy_respects_size() {
        let s = crate::collection::vec(any::<u8>(), 3..6);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..=5).contains(&v.len()));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (any::<u16>(), 1u8..32).prop_map(|(a, b)| u64::from(a) + u64::from(b));
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_smoke(x in any::<u16>(), n in 1usize..4) {
            prop_assert!(n < 4);
            prop_assert_eq!(u64::from(x) * n as u64, n as u64 * u64::from(x));
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in crate::collection::vec(any::<u8>(), 0..=7)) {
            prop_assert!(v.len() <= 7);
        }
    }
}
