//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. Implements the subset of the 0.5 API this workspace's
//! benches use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! simple wall-clock median reporting instead of statistical analysis.
//!
//! Bench targets must set `harness = false`, exactly as with the real crate.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output (one setup per measurement).
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Identifier naming one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Measure `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark and print its median sample time.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        match b.median() {
            Some(m) => {
                println!("{}/{}: median {:?} ({} samples)", self.name, id.id, m, b.samples.len())
            }
            None => println!("{}/{}: no samples recorded", self.name, id.id),
        }
        self
    }

    /// Finish the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup { name, sample_size: 10, _criterion: self }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Group benchmark functions under one runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g2");
        group.sample_size(2);
        let mut setups = 0;
        let mut routines = 0;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    7u64
                },
                |v| {
                    routines += 1;
                    v * 2
                },
                BatchSize::LargeInput,
            );
        });
        group.finish();
        assert_eq!(setups, 2);
        assert_eq!(routines, 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
